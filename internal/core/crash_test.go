package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

const crashRegion = 1 << 15 // small region keeps image captures cheap

// crashPolicies is the adversary set every persistence point is tested
// against: lose everything unfenced, keep everything queued, and a torn
// randomized mix (including random eviction of never-flushed lines).
func crashPolicies(seed int64) []pmem.CrashPolicy {
	return []pmem.CrashPolicy{
		pmem.DropAll,
		pmem.KeepQueued,
		{QueuedPersistProb: 0.5, EvictDirtyProb: 0.2, TearWords: true,
			Rand: rand.New(rand.NewSource(seed))},
	}
}

// captureAll arms hooks that snapshot a crash image at every store, pwb and
// fence while fn runs, under each policy.
func captureAll(dev *pmem.Device, seed int64, fn func()) [][]byte {
	var images [][]byte
	capture := func() {
		for _, pol := range crashPolicies(seed) {
			images = append(images, dev.CrashImage(pol))
		}
	}
	dev.SetHooks(&pmem.Hooks{
		Store: func(uint64) { capture() },
		Pwb:   func(uint64) { capture() },
		Fence: capture,
	})
	defer dev.SetHooks(nil)
	fn()
	capture() // final quiescent point
	return images
}

// TestCrashAtomicityEveryPersistencePoint is the central recovery test: a
// transaction mutating several distant locations (and allocating) is
// crashed at every persistence event under every adversary policy; after
// recovery the persistent state must be entirely pre-transaction or
// entirely post-transaction.
func TestCrashAtomicityEveryPersistencePoint(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e, err := New(crashRegion, Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(4096)
			if err != nil {
				return err
			}
			tx.SetRoot(0, p)
			for i := 0; i < 4096; i += 512 {
				tx.Store64(p+ptm.Ptr(i), 100)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		images := captureAll(e.Device(), 42, func() {
			err := e.Update(func(tx ptm.Tx) error {
				for i := 0; i < 4096; i += 512 {
					tx.Store64(p+ptm.Ptr(i), 200)
				}
				q, err := tx.Alloc(128)
				if err != nil {
					return err
				}
				tx.Store64(q, 777)
				tx.SetRoot(1, q)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		})
		if len(images) < 20 {
			t.Fatalf("only %d crash images captured", len(images))
		}
		for n, img := range images {
			re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
			if err != nil {
				t.Fatalf("image %d: recovery failed: %v", n, err)
			}
			if err := re.Read(func(tx ptm.Tx) error {
				base := tx.Root(0)
				first := tx.Load64(base)
				if first != 100 && first != 200 {
					return fmt.Errorf("impossible value %d", first)
				}
				for i := 0; i < 4096; i += 512 {
					if got := tx.Load64(base + ptm.Ptr(i)); got != first {
						return fmt.Errorf("torn transaction: slot %d = %d, first = %d", i, got, first)
					}
				}
				q := tx.Root(1)
				if first == 100 && !q.IsNil() {
					return fmt.Errorf("pre-state values but root 1 = %d", q)
				}
				if first == 200 {
					if q.IsNil() {
						return fmt.Errorf("post-state values but root 1 nil")
					}
					if got := tx.Load64(q); got != 777 {
						return fmt.Errorf("allocated object holds %d", got)
					}
				}
				return nil
			}); err != nil {
				t.Fatalf("image %d: %v", n, err)
			}
			if err := re.CheckHeap(); err != nil {
				t.Fatalf("image %d: heap corrupt after recovery: %v", n, err)
			}
		}
	})
}

// Crash during recovery itself must be recoverable (recovery is
// idempotent).
func TestCrashDuringRecovery(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e, err := New(crashRegion, Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(256)
			tx.SetRoot(0, p)
			tx.Store64(p, 1)
			return err
		})
		// Produce a mid-transaction (MUT) crash image.
		var mutImg []byte
		dev := e.Device()
		dev.SetHooks(&pmem.Hooks{Store: func(n uint64) {
			if mutImg == nil && dev.Load64(offState) == stateMUT {
				mutImg = dev.CrashImage(pmem.DropAll)
			}
		}})
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 2)
			return nil
		})
		dev.SetHooks(nil)
		if mutImg == nil {
			t.Fatal("no MUT-state image captured")
		}
		// Crash the recovery at each of its persistence events.
		rdev := pmem.FromImage(mutImg, pmem.ModelDRAM)
		images := captureAll(rdev, 7, func() {
			if _, err := Open(rdev, Config{Variant: v}); err != nil {
				t.Fatal(err)
			}
		})
		for n, img := range images {
			re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
			if err != nil {
				t.Fatalf("image %d: %v", n, err)
			}
			re.Read(func(tx ptm.Tx) error {
				if got := tx.Load64(tx.Root(0)); got != 1 && got != 2 {
					t.Errorf("image %d: value %d after twice-crashed recovery", n, got)
				}
				return nil
			})
		}
	})
}

// A rolled-back transaction followed by a crash must recover to the
// pre-transaction state.
func TestCrashAfterRollback(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e, err := New(crashRegion, Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			tx.SetRoot(0, p)
			tx.Store64(p, 11)
			return err
		})
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 22)
			return fmt.Errorf("user abort")
		})
		img := e.Device().CrashImage(pmem.DropAll)
		re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		re.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(0)); got != 11 {
				t.Errorf("value after rollback+crash = %d, want 11", got)
			}
			return nil
		})
	})
}

// Random workload with a crash after a random transaction count: the
// recovered state must equal the state after some committed prefix — and
// because crashes only happen between Update calls here, exactly the full
// committed history.
func TestCrashAfterRandomWorkload(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed))
			e, err := New(crashRegion, Config{Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			const slots = 16
			var arr ptm.Ptr
			e.Update(func(tx ptm.Tx) error {
				var err error
				arr, err = tx.Alloc(slots * 8)
				tx.SetRoot(0, arr)
				return err
			})
			model := make([]uint64, slots)
			n := 2 + rng.Intn(20)
			for i := 0; i < n; i++ {
				j, val := rng.Intn(slots), rng.Uint64()
				model[j] = val
				e.Update(func(tx ptm.Tx) error {
					tx.Store64(arr+ptm.Ptr(j*8), val)
					return nil
				})
			}
			img := e.Device().CrashImage(pmem.CrashPolicy{
				QueuedPersistProb: rng.Float64(),
				EvictDirtyProb:    rng.Float64() * 0.5,
				TearWords:         true,
				Rand:              rng,
			})
			re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			re.Read(func(tx ptm.Tx) error {
				a := tx.Root(0)
				for j := 0; j < slots; j++ {
					if got := tx.Load64(a + ptm.Ptr(j*8)); got != model[j] {
						t.Errorf("seed %d slot %d: %d, want %d", seed, j, got, model[j])
					}
				}
				return nil
			})
		}
	})
}

// Crash during initial format, at EVERY persistence event under every
// adversary policy, must leave the device either fully unformatted (the
// magic never became durable: the next Open restarts from scratch) or fully
// formatted — never half-formatted. This is the failure-atomicity claim the
// comment on format() makes.
func TestCrashDuringFormat(t *testing.T) {
	dev := pmem.New(headSize+2*crashRegion, pmem.ModelDRAM)
	images := captureAll(dev, 3, func() {
		if _, err := Open(dev, Config{Variant: RomLog}); err != nil {
			t.Fatal(err)
		}
	})
	if len(images) < 30 {
		t.Fatalf("only %d format crash images", len(images))
	}
	formatted := 0
	for n, img := range images {
		rd := pmem.FromImage(img, pmem.ModelDRAM)
		if rd.Load64(offMagic) == magicValue {
			formatted++
			// Magic durable ⇒ everything before it must be too: the header
			// checksum must verify and recovery must be a no-op from IDL.
			if sum := headerChecksum(rd.Load64(offVersion), rd.Load64(offRegionSize)); rd.Load64(offHeadSum) != sum {
				t.Fatalf("image %d: magic durable but checksum torn", n)
			}
		}
		re, err := Open(rd, Config{Variant: RomLog})
		if err != nil {
			t.Fatalf("image %d: %v", n, err)
		}
		if err := re.Update(func(tx ptm.Tx) error {
			p, err := tx.Alloc(32)
			if err == nil {
				tx.Store64(p, 1)
			}
			return err
		}); err != nil {
			t.Fatalf("image %d: engine unusable after format crash: %v", n, err)
		}
		if err := re.CheckHeap(); err != nil {
			t.Fatalf("image %d: heap corrupt after format crash: %v", n, err)
		}
	}
	t.Logf("%d format crash images verified (%d already formatted)", len(images), formatted)
}

// A torn (unrecognized) state word must take the conservative default
// recovery arm — restore main from back and return to IDL — not silently
// skip reconciliation.
func TestRecoverForgedStateWord(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e, err := New(crashRegion, Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			tx.SetRoot(0, p)
			tx.Store64(p, 41)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		// Forge a garbage state word (no valid IDL/MUT/CPY encoding) and
		// make it durable, simulating a sub-word tear of the state line.
		dev := e.Device()
		dev.Store64(offState, 0xDEADBEEFDEADBEEF)
		// Also scribble on main beyond the committed state: the default arm
		// must roll main back from back.
		dev.Store64(headSize+int(p), 999)
		dev.PersistAll()

		re, err := Open(pmem.FromImage(dev.Persisted(), pmem.ModelDRAM), Config{Variant: v})
		if err != nil {
			t.Fatalf("recovery with forged state word failed: %v", err)
		}
		if got := re.Device().Load64(offState); got != stateIDL {
			t.Errorf("state after recovery = %#x, want IDL", got)
		}
		if off := re.Verify(); off >= 0 {
			t.Errorf("twin copies diverge at %d after forged-state recovery", off)
		}
		re.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(0)); got != 41 {
				t.Errorf("value = %d after forged-state recovery, want 41 (rolled back)", got)
			}
			return nil
		})
		// The engine must keep working.
		if err := re.Update(func(tx ptm.Tx) error {
			tx.Store64(re.wtx.Root(0), 42)
			return nil
		}); err != nil {
			t.Errorf("engine unusable after forged-state recovery: %v", err)
		}
	})
}

// Torn head metadata under an intact magic must be reported as the typed
// ErrCorruptHeader, not interpreted as layout.
func TestOpenTornHeader(t *testing.T) {
	e, err := New(crashRegion, Config{Variant: RomLog})
	if err != nil {
		t.Fatal(err)
	}
	dev := e.Device()
	for _, corrupt := range []struct {
		name string
		off  int
	}{
		{"region size", offRegionSize},
		{"version", offVersion},
		{"checksum", offHeadSum},
	} {
		img := dev.Persisted()
		d2 := pmem.FromImage(img, pmem.ModelDRAM)
		d2.Store64(corrupt.off, d2.Load64(corrupt.off)^0xFF00FF00FF00FF00)
		d2.PersistAll()
		_, err := Open(d2, Config{Variant: RomLog})
		if err == nil {
			t.Fatalf("%s torn: Open succeeded silently", corrupt.name)
		}
		if !errors.Is(err, ErrCorruptHeader) {
			t.Errorf("%s torn: error %v, want ErrCorruptHeader", corrupt.name, err)
		}
		if !errors.Is(err, ptm.ErrCorruptHeader) {
			t.Errorf("%s torn: error does not match ptm.ErrCorruptHeader", corrupt.name)
		}
	}
}
