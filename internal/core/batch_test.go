package core_test

import (
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// newAudited builds an engine whose device is shadowed by a durability
// auditor from the first transaction on.
func newAudited(t *testing.T, cfg core.Config) (*core.Engine, *audit.Auditor) {
	t.Helper()
	dev := pmem.New(core.MinRegionSize*2+4096, cfg.Model)
	a := audit.New(dev, audit.Options{})
	a.Attach()
	cfg.Audit = a
	e, err := core.Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, a
}

// TestNoFenceWasteUnderDedupFlush pins the two waste classes the combined-
// commit flush discipline eliminates: with the deduplicated flush set no
// store can land on a flush-queued line (store_queued) and no fence fires
// with an empty queue (fence_noop) — including for empty update
// transactions, which previously paid two no-op fences each.
func TestNoFenceWasteUnderDedupFlush(t *testing.T) {
	for _, v := range []core.Variant{core.Rom, core.RomLog, core.RomLR} {
		t.Run(v.String(), func(t *testing.T) {
			e, a := newAudited(t, core.Config{Variant: v})
			defer e.Close()
			// Stores that repeatedly dirty the same cache line within one
			// transaction — the pattern that made the eager discipline
			// re-flush queued lines.
			for i := 0; i < 50; i++ {
				err := e.Update(func(tx ptm.Tx) error {
					p, err := tx.Alloc(64)
					if err != nil {
						return err
					}
					for j := 0; j < 8; j++ {
						tx.Store64(p+ptm.Ptr(8*j), uint64(i*j))
					}
					return tx.Free(p)
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			// Empty update transactions: no stores at all.
			for i := 0; i < 20; i++ {
				if err := e.Update(func(tx ptm.Tx) error { return nil }); err != nil {
					t.Fatal(err)
				}
			}
			tot := a.Totals()
			if tot.StoreQueued != 0 {
				t.Errorf("store_queued = %d, want 0 (dedup flush set defers pwbs past the last store)", tot.StoreQueued)
			}
			if tot.FenceNoop != 0 {
				t.Errorf("fence_noop = %d, want 0 (empty-queue fences elided)", tot.FenceNoop)
			}
			if tot.Violations != 0 {
				t.Errorf("auditor recorded %d violations", tot.Violations)
			}
		})
	}
}

// TestEagerPwbAblationStillWastes proves the pin above is not vacuous: the
// EagerPwb ablation reinstates per-store write-backs and must regenerate
// store_queued waste on the same workload.
func TestEagerPwbAblationStillWastes(t *testing.T) {
	e, a := newAudited(t, core.Config{Variant: core.RomLog, EagerPwb: true})
	defer e.Close()
	err := e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		for j := 0; j < 8; j++ {
			tx.Store64(p+ptm.Ptr(8*j), uint64(j))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tot := a.Totals(); tot.StoreQueued == 0 {
		t.Error("eager-pwb ablation produced no store_queued waste; pin is vacuous")
	}
	if tot := a.Totals(); tot.Violations != 0 {
		t.Errorf("eager ablation must still be correct; %d violations", tot.Violations)
	}
}

// TestEmptyUpdatePaysTwoFences pins the fence floor of an empty update
// transaction after elision: only the MUT publish fence and the commit-marker
// psync remain (fences 2 and 4 have provably empty queues).
func TestEmptyUpdatePaysTwoFences(t *testing.T) {
	e, err := core.New(1<<20, core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Device().Stats()
	if err := e.Update(func(tx ptm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	after := e.Device().Stats()
	if got := after.Pfences + after.Psyncs - before.Pfences - before.Psyncs; got != 2 {
		t.Errorf("empty update paid %d fences, want 2", got)
	}
}

// TestBatchAccounting pins the batch plumbing end to end: engine stats,
// auditor batch counters and UpdateBatched sequence numbers must agree, and
// under concurrent writers at least one batch must carry multiple ops so
// fences amortize below the per-tx floor.
func TestBatchAccounting(t *testing.T) {
	e, a := newAudited(t, core.Config{Variant: core.RomLog})
	defer e.Close()
	const workers, iters = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := e.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			bh := h.(interface {
				UpdateBatched(func(ptm.Tx) error) (uint64, error)
			})
			for i := 0; i < iters; i++ {
				seq, err := bh.UpdateBatched(func(tx ptm.Tx) error {
					tx.Store64(0, uint64(i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if seq == 0 {
					t.Error("committed op reported batch seq 0")
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.BatchOps != workers*iters {
		t.Errorf("BatchOps = %d, want %d", st.BatchOps, workers*iters)
	}
	if st.Batches == 0 || st.Batches > st.BatchOps {
		t.Errorf("Batches = %d out of range (BatchOps %d)", st.Batches, st.BatchOps)
	}
	tot := a.Totals()
	if tot.Batches != st.Batches || tot.BatchOps != st.BatchOps {
		t.Errorf("auditor saw %d batches/%d ops, engine reports %d/%d",
			tot.Batches, tot.BatchOps, st.Batches, st.BatchOps)
	}
	if tot.Violations != 0 {
		t.Errorf("auditor recorded %d violations", tot.Violations)
	}
	if tot.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d; concurrent writers never shared a durability round", tot.MaxBatch)
	}
	t.Logf("batches=%d ops=%d max=%d", st.Batches, st.BatchOps, tot.MaxBatch)
}
