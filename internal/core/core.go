// Package core implements the three Romulus algorithms — the heart of the
// paper and of this repository.
//
// An Engine owns a pmem.Device laid out as twin copies of one persistent
// heap: "main", which transactions mutate in place, and "back", a
// byte-level snapshot of the last committed state, preceded by a small
// header holding the persistent state machine (IDL/MUT/CPY) and the root
// pointer array. Because one copy is consistent at every instant, an
// update transaction costs at most FOUR persistence fences regardless of
// its size (§4.1, Algorithm 1):
//
//  1. state=MUT, pwb, pfence — announce mutation of main
//  2. user stores land in main (one pwb per dirty line); pfence
//  3. state=CPY, pwb, psync — the transaction's durable point
//  4. replicate main→back, pwb; pfence; state=IDL
//
// Recovery inverts the state machine: a crash in MUT restores main from
// back, a crash in CPY finishes the copy main→back, and IDL needs nothing.
// Every recovery action is idempotent, so crashes during recovery are
// harmless (tested by the crash-chain harness in internal/crashtest).
//
// The three variants share this engine and differ in Config.Variant:
//
//   - Rom (Algorithm 1): replicate copies the whole used heap prefix.
//   - RomLog (§4.7): a VOLATILE log of modified ranges makes replication
//     proportional to the write set; the log is discardable state, so it
//     costs no persistence events (see rangelog.go).
//   - RomLR (§5.3): Left-Right synchronization gives wait-free readers
//     that run against whichever copy is consistent, reached through
//     synthetic pointers (a constant base offset added to each Ptr).
//
// Concurrent updaters flat-combine (internal/flatcombine): mutations are
// announced in per-thread slots and executed as one durable transaction by
// the current writer-lock holder, amortizing the four fences across the
// batch. Readers use the variant's reader synchronization (crwwp scalable
// reader-writer lock, or Left-Right for RomLR) and never fence at all.
//
// Observability: the engine publishes transaction counters via Stats, and
// SetTrace attaches a per-transaction obs.Sink emitting one obs.TxEvent
// per update (with exact pwb/fence deltas measured at the device) and per
// read; see docs/OBSERVABILITY.md.
//
// File map: engine.go (lifecycle, commit protocol, recovery), tx.go
// (transactional loads/stores and the allocator bridge), layout.go
// (persistent header and twin-copy geometry), rangelog.go (RomLog's
// volatile modified-range log), snapshot.go (online snapshots, an
// extension beyond the paper).
package core
