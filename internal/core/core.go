package core
