package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Snapshot writes a consistent, restorable image of the persistent state
// to w, without blocking readers for the duration of the write.
//
// This is a capability that falls out of the twin-copy design for free:
// immediately after replication, the back region is a byte-exact
// consistent snapshot of the committed state. Snapshot enqueues an empty
// update through the writer path (so it serializes after all earlier
// updates and their replication), then — still holding the writer lock —
// serializes the header and back region. The resulting image is accepted
// by Open/OpenFile and by pmem.FromImage.
//
// Update transactions are blocked while the image is written; read
// transactions are not (RomulusLR readers proceed on main; C-RW-WP
// readers were already drained by the writer path and new ones are only
// blocked as for a normal update).
func (e *Engine) Snapshot(w io.Writer) error {
	var writeErr error
	err := e.Update(func(tx ptm.Tx) error {
		// Running inside the writer path: replication of every earlier
		// transaction has completed, so back == main == committed state.
		// An empty transaction replicates nothing; serialize back framed
		// as both copies of a fresh image.
		writeErr = e.writeImage(w)
		return nil
	})
	if err != nil {
		return err
	}
	return writeErr
}

// writeImage serializes [head][back][back] with the state forced to IDL,
// producing a quiescent image.
func (e *Engine) writeImage(w io.Writer) error {
	head := make([]byte, headSize)
	e.dev.LoadBytes(0, head)
	// Force IDL: the image represents a cleanly shut down instance.
	putLE64(head[offState:], stateIDL)
	if _, err := w.Write(head); err != nil {
		return fmt.Errorf("core: snapshot header: %w", err)
	}
	back := e.dev.Bytes(e.backBase, e.regionSize)
	for copies := 0; copies < 2; copies++ {
		if _, err := w.Write(back); err != nil {
			return fmt.Errorf("core: snapshot region: %w", err)
		}
	}
	return nil
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// SnapshotToFile writes a Snapshot image to path atomically (temp file and
// rename).
func (e *Engine) SnapshotToFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".romulus-snap-*")
	if err != nil {
		return fmt.Errorf("core: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := e.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// RestoreSnapshot opens an engine over a snapshot image previously written
// by Snapshot/SnapshotToFile.
func RestoreSnapshot(r io.Reader, cfg Config) (*Engine, error) {
	img, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if len(img) == 0 || len(img)%pmem.LineSize != 0 {
		return nil, fmt.Errorf("core: restore: image size %d is not a positive multiple of %d", len(img), pmem.LineSize)
	}
	return Open(pmem.FromImage(img, cfg.Model), cfg)
}
