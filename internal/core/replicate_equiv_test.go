package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// equivOp is one randomized mutation of a round, applied identically to
// every engine. Engine 0 records the pointer its Alloc returned; the other
// engines assert theirs matches (the allocator is deterministic, so a
// divergence means the engines' heaps drifted apart).
type equivOp struct {
	run    func(tx ptm.Tx, first bool) error
	allocd ptm.Ptr // set by engine 0's execution when the op allocates
	frees  ptm.Ptr // non-zero when the op frees this block
	isAl   bool
}

// TestQuickDirtyRangeReplicateEquivalence is the property test behind the
// dirty-extent tracker: identical random operation sequences — solo
// commits, multi-op flat-combined batches, and whole-round rollbacks —
// drive a dirty-range rom engine, a FullReplicate rom engine (the paper's
// original O(watermark) back-copy) and a romlog engine. After every
// durability round:
//
//   - each engine's twin copies agree byte for byte (Verify), so
//     dirty-range replication leaves back == main exactly as the full copy
//     does;
//   - the dirty-range engine's main region is byte-identical to the
//     full-copy engine's, so line-granular tracking never changes committed
//     (or rolled-back) state;
//   - the auditor shadowing the dirty-range engine has seen no clean-line
//     pwb: every line the new replicate (and rollback) path writes back was
//     stored this round.
func TestQuickDirtyRangeReplicateEquivalence(t *testing.T) {
	const region = 1 << 18
	mk := func(name string, cfg Config) *Engine {
		cfg.Model = pmem.ModelDRAM
		e, err := New(region, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return e
	}
	dirty := mk("dirty", Config{Variant: Rom})
	full := mk("full", Config{Variant: Rom, FullReplicate: true})
	rlog := mk("romlog", Config{Variant: RomLog})
	engines := []*Engine{dirty, full, rlog}
	names := []string{"dirty", "full", "romlog"}

	aud := audit.New(dirty.Device(), audit.Options{})
	aud.Attach()
	dirty.SetAuditor(aud)

	rng := rand.New(rand.NewSource(7))
	var live []ptm.Ptr // identical across engines

	// plan builds one op against view, the shrinking within-round picture of
	// live blocks (ops never target a block freed — or allocated — earlier
	// in the same round; cross-round effects are applied after commit).
	plan := func(view *[]ptm.Ptr) *equivOp {
		o := &equivOp{}
		kind := rng.Intn(10)
		switch {
		case kind < 4 && len(*view) > 0: // scattered small store
			p := (*view)[rng.Intn(len(*view))]
			off := ptm.Ptr(rng.Intn(56))
			v := rng.Uint64()
			sz := rng.Intn(4)
			o.run = func(tx ptm.Tx, _ bool) error {
				switch sz {
				case 0:
					tx.Store8(p+off, byte(v))
				case 1:
					tx.Store16(p+off, uint16(v))
				case 2:
					tx.Store32(p+off, uint32(v))
				default:
					tx.Store64(p+off, v)
				}
				return nil
			}
		case kind < 6 && len(*view) > 0: // bulk StoreBytes
			p := (*view)[rng.Intn(len(*view))]
			buf := make([]byte, 1+rng.Intn(64))
			rng.Read(buf)
			o.run = func(tx ptm.Tx, _ bool) error { tx.StoreBytes(p, buf); return nil }
		case kind < 8 || len(*view) == 0: // alloc: grows watermark, memsets
			n := 64 + rng.Intn(2048)
			o.isAl = true
			o.run = func(tx ptm.Tx, first bool) error {
				p, err := tx.Alloc(n)
				if err != nil {
					return err
				}
				if first {
					o.allocd = p
				} else if p != o.allocd {
					return fmt.Errorf("allocator diverged: got %d, engine 0 got %d", p, o.allocd)
				}
				tx.SetRoot(0, p)
				return nil
			}
		default: // free a random block
			i := rng.Intn(len(*view))
			p := (*view)[i]
			*view = append((*view)[:i], (*view)[i+1:]...)
			o.frees = p
			o.run = func(tx ptm.Tx, _ bool) error { return tx.Free(p) }
		}
		return o
	}

	apply := func(ops []*equivOp) {
		for _, o := range ops {
			switch {
			case o.isAl:
				live = append(live, o.allocd)
			case o.frees != 0:
				for i, p := range live {
					if p == o.frees {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
			}
		}
	}

	check := func(round int) {
		t.Helper()
		for i, e := range engines {
			if off := e.Verify(); off >= 0 {
				t.Fatalf("round %d: %s twin copies diverge at offset %d", round, names[i], off)
			}
		}
		dwm, fwm := dirty.Watermark(), full.Watermark()
		if dwm != fwm {
			t.Fatalf("round %d: watermark %d (dirty) vs %d (full)", round, dwm, fwm)
		}
		dm := dirty.Device().Bytes(dirty.mainBase, dwm)
		fm := full.Device().Bytes(full.mainBase, fwm)
		if !bytes.Equal(dm, fm) {
			i := 0
			for i < len(dm) && dm[i] == fm[i] {
				i++
			}
			t.Fatalf("round %d: dirty-range main diverges from full-copy main at offset %d", round, i)
		}
	}

	for round := 0; round < 400; round++ {
		view := append([]ptm.Ptr(nil), live...)
		ops := make([]*equivOp, 1+rng.Intn(4))
		for i := range ops {
			ops[i] = plan(&view)
		}
		switch mode := rng.Intn(4); mode {
		case 0, 1: // flat-combined batch commit through the writer hooks
			for ei, e := range engines {
				tx := e.hooks.Begin()
				for _, o := range ops {
					if err := o.run(tx, ei == 0); err != nil {
						t.Fatalf("round %d: %s: %v", round, names[ei], err)
					}
				}
				e.hooks.Commit(tx, len(ops))
			}
			apply(ops)
		case 2: // solo commits through the public Update path
			for ei, e := range engines {
				for _, o := range ops {
					o := o
					if err := e.Update(func(tx ptm.Tx) error { return o.run(tx, ei == 0) }); err != nil {
						t.Fatalf("round %d: %s: %v", round, names[ei], err)
					}
				}
			}
			apply(ops)
		case 3: // rollback: apply every op, then revert the whole round
			for ei, e := range engines {
				tx := e.hooks.Begin()
				for _, o := range ops {
					if err := o.run(tx, ei == 0); err != nil {
						t.Fatalf("round %d: %s: %v", round, names[ei], err)
					}
				}
				e.hooks.Rollback(tx)
			}
			// Rolled back: no allocation or free survives.
		}
		check(round)
	}

	if n := aud.ViolationCount(); n > 0 {
		t.Errorf("auditor found %d durability violation(s) on the dirty-range engine", n)
	}
	if tot := aud.Totals(); tot.PwbClean != 0 {
		t.Errorf("dirty-range replication issued %d clean-line pwbs, want 0", tot.PwbClean)
	}
}
