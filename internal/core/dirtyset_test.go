package core

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

func TestDirtySetDisabledIsNoop(t *testing.T) {
	var s dirtySet
	s.add(0, 100)
	if s.enabled() || s.len() != 0 || s.extents() != nil {
		t.Error("zero dirtySet recorded lines")
	}
}

func TestDirtySetCoalescesAdjacentLines(t *testing.T) {
	var s dirtySet
	s.init(1 << 16)
	s.add(0, 8)                    // line 0
	s.add(130, 4)                  // line 2
	s.add(60, 8)                   // lines 0 and 1 (straddles the boundary)
	s.add(pmem.LineSize*2+32, 100) // lines 2..4, line 2 already dirty
	ext := s.extents()
	want := []rng{{0, 5 * pmem.LineSize}}
	if len(ext) != len(want) || ext[0] != want[0] {
		t.Fatalf("extents = %v, want %v", ext, want)
	}
	if s.len() != 5 {
		t.Errorf("len = %d, want 5 distinct lines", s.len())
	}
}

func TestDirtySetKeepsGapsSeparate(t *testing.T) {
	var s dirtySet
	s.init(1 << 16)
	s.add(5*pmem.LineSize, 8)
	s.add(0, 8)
	s.add(9*pmem.LineSize+60, 8) // straddles lines 9 and 10
	ext := s.extents()
	want := []rng{
		{0, pmem.LineSize},
		{5 * pmem.LineSize, pmem.LineSize},
		{9 * pmem.LineSize, 2 * pmem.LineSize},
	}
	if len(ext) != len(want) {
		t.Fatalf("extents = %v, want %v", ext, want)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("extent %d = %v, want %v", i, ext[i], want[i])
		}
	}
}

func TestDirtySetResetIsEmpty(t *testing.T) {
	var s dirtySet
	s.init(1 << 12)
	s.add(0, 4096)
	s.reset()
	if s.len() != 0 || s.extents() != nil {
		t.Error("reset left lines behind")
	}
	s.add(64, 1)
	if got := s.extents(); len(got) != 1 || got[0] != (rng{64, 64}) {
		t.Errorf("post-reset extents = %v, want [{64 64}]", got)
	}
}

func TestDirtySetEpochWrap(t *testing.T) {
	var s dirtySet
	s.init(1 << 12)
	s.epoch = ^uint32(0) // next reset wraps
	s.add(0, 8)
	s.reset()
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	// The cleared stamps must not alias old entries as already-dirty.
	s.add(0, 8)
	if s.len() != 1 {
		t.Errorf("len after wrap = %d, want 1", s.len())
	}
}

// TestDirtySetAllocationFree pins the hot-path cost: after warm-up a full
// round of adds plus extents() allocates nothing.
func TestDirtySetAllocationFree(t *testing.T) {
	var s dirtySet
	s.init(1 << 16)
	round := func() {
		s.reset()
		for j := 0; j < 128; j++ {
			s.add(uint64((j*2654435761)%(1<<16)), 8)
		}
		s.extents()
	}
	round()
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Errorf("steady-state round allocated %.1f times, want 0", allocs)
	}
}

// BenchmarkStoreInterposition pins the per-store cost of the interposition
// path — Store64 through the device store, the dirty tracker (range log for
// romlog, dirty set for rom, disabled for the rom-full ablation) and the
// flush set — amortizing the durability round over a large transaction.
func BenchmarkStoreInterposition(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"rom", Config{Variant: Rom}},
		{"rom-full", Config{Variant: Rom, FullReplicate: true}},
		{"romlog", Config{Variant: RomLog}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			c.cfg.Model = pmem.ModelDRAM
			e, err := New(1<<21, c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			var p ptm.Ptr
			const slots = 8192 // 64 KiB working set
			if err := e.Update(func(tx ptm.Tx) error {
				p, err = tx.Alloc(8 * slots)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			const perTx = 1024
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n += perTx {
				if err := e.Update(func(tx ptm.Tx) error {
					for i := 0; i < perTx; i++ {
						tx.Store64(p+ptm.Ptr(8*((n+i*97)%slots)), uint64(i))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
