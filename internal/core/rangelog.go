package core

import (
	"cmp"
	"slices"
)

// rng is one volatile redo-log entry: a modified [Off, Off+N) byte range of
// the main region.
type rng struct {
	Off, N uint64
}

// rangeLog is the volatile redo log of §4.7: unlike other log-based PTMs it
// records only addresses and lengths, never data, and lives in DRAM — the
// recovery procedure does not need it (the twin copy is self-sufficient),
// so it costs no persistent writes at all.
type rangeLog struct {
	enabled bool
	merge   bool // extend the last entry on overlap/adjacency (ablatable)
	ranges  []rng
	scratch []rng

	// compactValid marks scratch[:compactLen] as holding the compacted form
	// of the current ranges. A durability round consults the compacted log
	// up to three times (deferred write-backs at the durable point,
	// replication, rollback); caching makes every call after the first a
	// slice header return, and the scratch buffer is pooled across rounds so
	// the steady state allocates nothing (pinned by
	// TestRangeLogCompactedAllocationFree).
	compactValid bool
	compactLen   int
}

func (l *rangeLog) reset() {
	l.ranges = l.ranges[:0]
	l.compactValid = false
}

// add records a store of n bytes at off.
func (l *rangeLog) add(off, n uint64) {
	if !l.enabled || n == 0 {
		return
	}
	l.compactValid = false
	if l.merge && len(l.ranges) > 0 {
		last := &l.ranges[len(l.ranges)-1]
		if off <= last.Off+last.N && last.Off <= off+n {
			end := last.Off + last.N
			if off+n > end {
				end = off + n
			}
			if off < last.Off {
				last.Off = off
			}
			last.N = end - last.Off
			return
		}
	}
	l.ranges = append(l.ranges, rng{off, n})
}

// mergeGap is the maximum gap (in bytes) across which two ranges are fused
// when compacting. Copying a small unchanged gap is free semantically (the
// bytes are identical in main and back) and cheaper than an extra pwb.
const mergeGap = 64

// compacted returns the log as a sorted, non-overlapping list of ranges,
// fusing ranges separated by less than a cache line. The returned slice is
// reused across transactions and valid until the next add or reset; callers
// must not retain or mutate it.
func (l *rangeLog) compacted() []rng {
	if l.compactValid {
		return l.scratch[:l.compactLen]
	}
	if len(l.ranges) == 0 {
		return nil
	}
	l.scratch = append(l.scratch[:0], l.ranges...)
	s := l.scratch
	slices.SortFunc(s, func(a, b rng) int { return cmp.Compare(a.Off, b.Off) })
	out := s[:1]
	for _, r := range s[1:] {
		last := &out[len(out)-1]
		if r.Off <= last.Off+last.N+mergeGap {
			if end := r.Off + r.N; end > last.Off+last.N {
				last.N = end - last.Off
			}
			continue
		}
		out = append(out, r)
	}
	l.compactLen = len(out)
	l.compactValid = true
	return out
}

// bytesLogged returns the total bytes covered by the raw (uncompacted) log.
func (l *rangeLog) bytesLogged() uint64 {
	var n uint64
	for _, r := range l.ranges {
		n += r.N
	}
	return n
}
