package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ptm"
)

// refCoverage computes the byte set covered by raw ranges, the oracle the
// compacted log must match (give or take the deliberate gap fusion).
func refCoverage(ranges []rng) map[uint64]bool {
	cov := map[uint64]bool{}
	for _, r := range ranges {
		for b := r.Off; b < r.Off+r.N; b++ {
			cov[b] = true
		}
	}
	return cov
}

func TestRangeLogDisabledIsEmpty(t *testing.T) {
	l := rangeLog{}
	l.add(10, 20)
	if len(l.ranges) != 0 || l.compacted() != nil {
		t.Error("disabled log recorded entries")
	}
}

func TestRangeLogMergesAdjacent(t *testing.T) {
	l := rangeLog{enabled: true, merge: true}
	l.add(0, 8)
	l.add(8, 8)
	l.add(16, 8)
	if len(l.ranges) != 1 {
		t.Errorf("adjacent stores produced %d entries, want 1", len(l.ranges))
	}
	c := l.compacted()
	if len(c) != 1 || c[0].Off != 0 || c[0].N != 24 {
		t.Errorf("compacted = %v", c)
	}
}

func TestRangeLogNoMergeKeepsEntries(t *testing.T) {
	l := rangeLog{enabled: true, merge: false}
	l.add(0, 8)
	l.add(8, 8)
	if len(l.ranges) != 2 {
		t.Errorf("no-merge log has %d entries, want 2", len(l.ranges))
	}
	// Compaction still fuses them for replication.
	if c := l.compacted(); len(c) != 1 {
		t.Errorf("compacted = %v", c)
	}
}

func TestRangeLogBytesLogged(t *testing.T) {
	l := rangeLog{enabled: true}
	l.add(0, 10)
	l.add(100, 5)
	if got := l.bytesLogged(); got != 15 {
		t.Errorf("bytesLogged = %d", got)
	}
	l.reset()
	if l.bytesLogged() != 0 {
		t.Error("reset did not clear")
	}
}

// Property: for any store sequence, the compacted ranges (a) cover every
// logged byte, (b) are sorted and non-overlapping, and (c) over-cover only
// within the fusion gap.
func TestQuickRangeLogCompaction(t *testing.T) {
	f := func(seed int64, merge bool) bool {
		rng_ := rand.New(rand.NewSource(seed))
		l := rangeLog{enabled: true, merge: merge}
		var raw []rng
		for i := 0; i < 100; i++ {
			off := uint64(rng_.Intn(4096))
			n := uint64(1 + rng_.Intn(64))
			l.add(off, n)
			raw = append(raw, rng{off, n})
		}
		c := l.compacted()
		// (b) sorted, non-overlapping, fused across <= mergeGap.
		if !sort.SliceIsSorted(c, func(i, j int) bool { return c[i].Off < c[j].Off }) {
			t.Log("not sorted")
			return false
		}
		for i := 1; i < len(c); i++ {
			if c[i].Off <= c[i-1].Off+c[i-1].N+mergeGap {
				t.Logf("ranges %d and %d should have been fused", i-1, i)
				return false
			}
		}
		// (a) full coverage.
		cov := refCoverage(raw)
		for b := range cov {
			found := false
			for _, r := range c {
				if b >= r.Off && b < r.Off+r.N {
					found = true
					break
				}
			}
			if !found {
				t.Logf("byte %d lost", b)
				return false
			}
		}
		// (c) bounded over-coverage: every compacted byte is within
		// mergeGap of a logged byte.
		for _, r := range c {
			for b := r.Off; b < r.Off+r.N; b++ {
				near := false
				for d := 0; d <= mergeGap && !near; d++ {
					if cov[b+uint64(d)] || (b >= uint64(d) && cov[b-uint64(d)]) {
						near = true
					}
				}
				if !near {
					t.Logf("byte %d over-covered beyond the gap", b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: replication driven by the compacted log is equivalent to a
// full copy, for random store sequences. This is the core soundness
// argument of §4.7.
func TestQuickLogReplicationEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng_ := rand.New(rand.NewSource(seed))
		e := newEngine(t, RomLog)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			q, err := tx.Alloc(4096)
			p = q
			return err
		}); err != nil {
			return false
		}
		for txn := 0; txn < 5; txn++ {
			if err := e.Update(func(tx ptm.Tx) error {
				for s := 0; s < 30; s++ {
					tx.Store64(p+ptm.Ptr(rng_.Intn(510)*8), rng_.Uint64())
				}
				return nil
			}); err != nil {
				return false
			}
			if e.Verify() >= 0 {
				t.Logf("seed %d txn %d: copies diverge", seed, txn)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The compacted form is cached per durability round: repeated calls (a
// DeferPwb round consults it at the durable point and again at replication)
// must return the identical slice without re-sorting, and any add or reset
// must invalidate the cache.
func TestRangeLogCompactedCache(t *testing.T) {
	l := rangeLog{enabled: true, merge: true}
	l.add(200, 8)
	l.add(0, 8)
	c1 := l.compacted()
	c2 := l.compacted()
	if len(c1) != 2 || len(c2) != 2 {
		t.Fatalf("compacted lengths %d, %d; want 2, 2", len(c1), len(c2))
	}
	if &c1[0] != &c2[0] {
		t.Error("second compacted call rebuilt the slice instead of returning the cache")
	}
	l.add(1000, 8)
	c3 := l.compacted()
	if len(c3) != 3 {
		t.Errorf("compacted after add has %d ranges, want 3 (stale cache?)", len(c3))
	}
	l.reset()
	if got := l.compacted(); got != nil {
		t.Errorf("compacted after reset = %v, want nil", got)
	}
}

// TestRangeLogCompactedAllocationFree pins the allocation behavior the
// cache exists for: once the scratch buffer has grown to the working-set
// size, a full round — reset, a batch of scattered adds, and the up to
// three compacted() calls the engine makes — allocates nothing.
func TestRangeLogCompactedAllocationFree(t *testing.T) {
	l := rangeLog{enabled: true, merge: true}
	round := func() {
		l.reset()
		for j := 0; j < 128; j++ {
			l.add(uint64((j*2654435761)%(1<<16)), 8)
		}
		l.compacted()
		l.compacted()
		l.compacted()
	}
	round() // warm up: grow ranges and scratch to steady-state capacity
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Errorf("steady-state round allocated %.1f times, want 0", allocs)
	}
}

// BenchmarkRangeLogCompacted measures one durability round's log cost at
// commit: scattered adds plus the round's compacted() calls (the second and
// third hitting the cache). Run with -benchmem; steady state is 0 allocs/op.
func BenchmarkRangeLogCompacted(b *testing.B) {
	l := rangeLog{enabled: true, merge: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.reset()
		for j := 0; j < 128; j++ {
			l.add(uint64((j*2654435761)%(1<<16)), 8)
		}
		if len(l.compacted()) == 0 || len(l.compacted()) == 0 {
			b.Fatal("empty compacted log")
		}
	}
}
