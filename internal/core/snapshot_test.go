package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/ptm"
)

func TestSnapshotRoundTrip(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			if err != nil {
				return err
			}
			tx.Store64(p, 777)
			tx.SetRoot(0, p)
			return nil
		})
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		re, err := RestoreSnapshot(&buf, Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		re.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(0)); got != 777 {
				t.Errorf("restored value = %d", got)
			}
			return nil
		})
		// The restored engine must be fully operational.
		if err := re.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 888)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if off := re.Verify(); off >= 0 {
			t.Errorf("restored engine copies diverge at %d", off)
		}
	})
}

func TestSnapshotExcludesLaterUpdates(t *testing.T) {
	e := newEngine(t, RomLog)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(8)
		tx.SetRoot(0, p)
		tx.Store64(p, 1)
		return err
	})
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Mutate after the snapshot.
	e.Update(func(tx ptm.Tx) error {
		tx.Store64(p, 2)
		return nil
	})
	re, err := RestoreSnapshot(&buf, Config{Variant: RomLog})
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(p); got != 1 {
			t.Errorf("snapshot leaked later update: %d", got)
		}
		return nil
	})
}

func TestSnapshotToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.pm")
	e := newEngine(t, RomLog)
	e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(8)
		if err != nil {
			return err
		}
		tx.Store64(p, 42)
		tx.SetRoot(1, p)
		return nil
	})
	if err := e.SnapshotToFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileImage(path, Config{Variant: RomLog})
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(tx.Root(1)); got != 42 {
			t.Errorf("value = %d", got)
		}
		return nil
	})
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreSnapshot(bytes.NewReader(nil), Config{}); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := RestoreSnapshot(bytes.NewReader(make([]byte, 100)), Config{}); err == nil {
		t.Error("misaligned image accepted")
	}
}

// Snapshots taken while writers hammer the engine must each be internally
// consistent (the all-slots-equal invariant).
func TestSnapshotConsistentUnderConcurrentWriters(t *testing.T) {
	e := newEngine(t, RomLR)
	const slots = 16
	var arr ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(slots * 8)
		tx.SetRoot(0, arr)
		return err
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := e.NewHandle()
		defer h.Release()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Update(func(tx ptm.Tx) error {
				for s := 0; s < slots; s++ {
					tx.Store64(arr+ptm.Ptr(s*8), i)
				}
				return nil
			})
		}
	}()
	for round := 0; round < 5; round++ {
		var buf bytes.Buffer
		if err := e.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		re, err := RestoreSnapshot(&buf, Config{Variant: RomLR})
		if err != nil {
			t.Fatal(err)
		}
		re.Read(func(tx ptm.Tx) error {
			a := tx.Root(0)
			first := tx.Load64(a)
			for s := 1; s < slots; s++ {
				if got := tx.Load64(a + ptm.Ptr(s*8)); got != first {
					t.Errorf("round %d: torn snapshot: slot %d = %d, slot 0 = %d", round, s, got, first)
				}
			}
			return nil
		})
	}
	close(stop)
	wg.Wait()
}

// OpenFileImage opens a snapshot image file for package-local tests.
func OpenFileImage(path string, cfg Config) (*Engine, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return RestoreSnapshot(bytes.NewReader(data), cfg)
}
