package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/crwwp"
	"repro/internal/flatcombine"
	"repro/internal/hist"
	"repro/internal/hsync"
	"repro/internal/leftright"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Variant selects which of the three Romulus algorithms an engine runs.
// The zero value selects RomLog, the paper's flagship configuration.
type Variant int

const (
	// VariantDefault resolves to RomLog.
	VariantDefault Variant = iota
	// Rom is the basic algorithm: no range log, C-RW-WP plus flat combining
	// for concurrency. Replication copies the round's dirty cache lines
	// (tracked by a DRAM dirty set; Config.FullReplicate restores the
	// paper's original full-watermark copy as an ablation).
	Rom
	// RomLog adds the volatile redo log: only modified ranges replicate.
	RomLog
	// RomLR is RomLog with Left-Right synchronization: wait-free readers.
	RomLR
)

// String returns the short engine name used in benchmark output.
func (v Variant) String() string {
	switch v {
	case Rom:
		return "rom"
	case VariantDefault, RomLog:
		return "romlog"
	case RomLR:
		return "romlr"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Config tunes an engine. The zero value gives the paper's defaults.
type Config struct {
	// Variant selects the algorithm (Rom, RomLog or RomLR).
	Variant Variant
	// Model is the persistence model for freshly created devices (New).
	Model pmem.Model
	// DisableLogMerge turns off in-place extension of the last log entry
	// (ablation; compaction at commit still runs).
	DisableLogMerge bool
	// DeferPwb delays per-store write-backs to commit time, issuing one pwb
	// per modified cache line from the compacted log instead of one per
	// store (ablation; log variants only).
	DeferPwb bool
	// EagerPwb restores the pre-batching flush discipline: one pwb issued
	// inline with every store, re-flushing lines already queued (ablation;
	// the default is a deduplicated per-batch flush set that write-backs
	// each dirty line exactly once before the commit fence).
	EagerPwb bool
	// FullReplicate restores the basic algorithm's original commit path:
	// replicate (and roll back) the entire watermark prefix instead of only
	// the round's dirty cache lines (ablation; Rom only — the log variants
	// already replicate logged ranges). The dirty-range equivalence
	// property test and §4.7's replication-volume contrast measure against
	// this path.
	FullReplicate bool
	// DisableFlatCombining serializes writers with a plain spin lock
	// instead of combining announced operations (ablation).
	DisableFlatCombining bool
	// DisableOpenVerify skips the quiescent twin-copy comparison at Open
	// (ablation). The media-fault campaign uses it as its deliberately
	// unhardened fixture: with the check off, at-rest corruption of one copy
	// is served silently, proving the campaign detects what the check exists
	// to catch.
	DisableOpenVerify bool
	// Audit, when non-nil, receives the engine's durability-protocol
	// markers: TxBegin/TxEnd around each update transaction, format and
	// recovery, and DurablePoint at every commit-marker psync.
	Audit ptm.Auditor
	// ReserveTail reserves this many bytes (line-aligned up) at the tail of
	// a freshly created device, past both region copies, for a caller-owned
	// structure — the shard layer's flight recorder lives there. Only New
	// consults it: on reopen the header's recorded region size governs the
	// layout, so the tail is implicitly whatever the device holds past the
	// copies (ReservedTail reports it).
	ReserveTail int
}

// Engine is a Romulus persistent transactional memory over a simulated
// persistent-memory device. It implements ptm.PTM.
type Engine struct {
	dev        *pmem.Device
	cfg        Config
	mainBase   int
	backBase   int
	regionSize int
	heap       *alloc.Heap

	reg     hsync.Registry
	comb    *flatcombine.Combiner[*Tx]
	hooks   flatcombine.Hooks[*Tx]
	rw      crwwp.Lock     // Rom, RomLog
	lr      leftright.LR   // RomLR
	wlock   hsync.SpinLock // writer serialization when combining is disabled
	wtx     Tx             // the single writer transaction, reused
	handles chan *Handle   // pool for the convenience Update/Read API

	// fset collects the dirty lines of the current batch for one
	// deduplicated write-back burst at commit. Only the single writer (the
	// combiner) touches it, like wtx.
	fset *pmem.FlushSet

	// dirty tracks the round's modified cache lines when the range log is
	// disabled (basic Rom without the FullReplicate ablation), so
	// replication copies O(dirty) bytes instead of the whole watermark
	// prefix. Dirty extents accumulate across a flat-combined batch and
	// drain once per durability round, like fset. Only the single writer
	// touches it.
	dirty dirtySet

	updates   atomic.Uint64
	reads     atomic.Uint64
	rollbacks atomic.Uint64
	// replBytes and replExtents count bytes and contiguous ranges copied
	// between the twin copies at replication and rollback — the
	// write-amplification measure behind ptm_replicate_bytes_total.
	replBytes   atomic.Uint64
	replExtents atomic.Uint64

	// pwbHist records pwbs issued per update transaction (§6.2's analysis
	// tool). Only the single writer touches it.
	pwbHist    hist.Histogram
	txStartPwb uint64

	// wmBumped marks the current round as having raised the persistent
	// watermark, so rollback knows whether the flush-set drop lost a
	// watermark write-back that must be reissued. Single-writer, like wtx.
	wmBumped bool

	// trace receives one obs.TxEvent per transaction when non-nil. Set only
	// at quiescent points (SetTrace); txStartFence is the fence-count
	// baseline taken at beginTx, touched only by the single writer.
	trace        obs.Sink
	txStartFence uint64

	// aud receives durability-protocol markers when non-nil. Set at Open
	// (Config.Audit) or at a quiescent point (SetAuditor).
	aud ptm.Auditor
}

var _ ptm.PTM = (*Engine)(nil)

// ErrRegionMismatch is returned by Open when the device does not match the
// recorded layout.
var ErrRegionMismatch = errors.New("core: device layout does not match persistent header")

// ErrCorruptHeader is returned (wrapped) by Open when the header's magic is
// present but its checksum does not cover the stored words — torn head
// metadata. It aliases the repository-wide typed error so callers can match
// it across engines.
var ErrCorruptHeader = ptm.ErrCorruptHeader

// ErrCorruptPayload aliases the typed error returned (wrapped) by Open when
// the twin copies diverge at a quiescent (IDL) open — at-rest corruption of
// one copy, which recovery must refuse to serve rather than guess through.
var ErrCorruptPayload = ptm.ErrCorruptPayload

// headerChecksum covers the static header words, written once at format
// time. The mutable words (watermark, state) are excluded: the watermark is
// bounds-checked at recovery and the state machine has a conservative
// default arm, so neither needs — nor could keep up with — a per-store
// checksum.
func headerChecksum(version, regionSize uint64) uint64 {
	return ptm.HeaderChecksum(magicValue, version, regionSize)
}

// MinRegionSize is the smallest usable per-copy region size.
const MinRegionSize = heapBase + alloc.MinSize

// New creates a fresh device sized for two copies of regionSize bytes plus
// the header, formats it, and opens an engine on it.
func New(regionSize int, cfg Config) (*Engine, error) {
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("core: region size %d below minimum %d", regionSize, MinRegionSize)
	}
	regionSize = ptm.Align(regionSize, pmem.LineSize)
	tail := 0
	if cfg.ReserveTail > 0 {
		tail = ptm.Align(cfg.ReserveTail, pmem.LineSize)
	}
	dev := pmem.New(headSize+2*regionSize+tail, cfg.Model)
	return Open(dev, cfg)
}

// Open attaches an engine to a device, formatting it if it has never held a
// Romulus instance and running crash recovery otherwise (Algorithm 1's
// recover()).
func Open(dev *pmem.Device, cfg Config) (*Engine, error) {
	if cfg.Variant == VariantDefault {
		cfg.Variant = RomLog
	}
	reserve := 0
	if cfg.ReserveTail > 0 {
		reserve = ptm.Align(cfg.ReserveTail, pmem.LineSize)
	}
	// maxRegion is the largest per-copy size this device could physically
	// hold; the format-time size additionally leaves the reserved tail free.
	maxRegion := (dev.Size() - headSize) / 2
	maxRegion &^= pmem.LineSize - 1
	regionSize := (dev.Size() - headSize - reserve) / 2
	regionSize &^= pmem.LineSize - 1
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("core: device of %d bytes too small (need %d per region)", dev.Size(), MinRegionSize)
	}
	formatted := dev.Load64(offMagic) == magicValue
	if formatted {
		if sum := headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize)); dev.Load64(offHeadSum) != sum {
			return nil, fmt.Errorf("core: header checksum %#x, computed %#x: %w",
				dev.Load64(offHeadSum), sum, ErrCorruptHeader)
		}
		if dev.Load64(offVersion) != layoutVersion {
			return nil, fmt.Errorf("core: layout version %d, want %d", dev.Load64(offVersion), layoutVersion)
		}
		// On a formatted device the checksummed header governs the layout:
		// any in-range recorded size is honored, so a device formatted with a
		// reserved tail (Config.ReserveTail) reopens correctly even when the
		// opener passes a different — or no — reserve. Out-of-range sizes are
		// still a layout mismatch: the copies would not fit the device.
		got := int(dev.Load64(offRegionSize))
		if got < MinRegionSize || got > maxRegion {
			return nil, fmt.Errorf("%w: header says %d, device fits %d..%d", ErrRegionMismatch, got, MinRegionSize, maxRegion)
		}
		regionSize = got
	}
	e := &Engine{
		dev:        dev,
		cfg:        cfg,
		mainBase:   headSize,
		backBase:   headSize + regionSize,
		regionSize: regionSize,
		handles:    make(chan *Handle, hsync.MaxThreads),
	}
	e.wtx = Tx{e: e, base: e.mainBase}
	e.wtx.log.enabled = cfg.Variant != Rom
	e.wtx.log.merge = !cfg.DisableLogMerge
	e.fset = pmem.NewFlushSet(dev.Size())
	if cfg.Variant == Rom && !cfg.FullReplicate {
		e.dirty.init(regionSize)
	}
	e.aud = cfg.Audit

	openTrips := dev.FaultsTripped()
	if !formatted {
		// No magic normally means a never-formatted device (or a format that
		// crashed before its final publish). But a NONZERO wrong magic whose
		// stored header checksum validates against the true magic constant is
		// a rotted magic word on a once-complete header — reformatting would
		// silently discard a full region of data, so refuse instead. Magic
		// zero stays "unformatted": a crash between the header fence and the
		// magic publish legitimately leaves a valid checksum with no magic,
		// and rot flips bits, never zeroing the whole word.
		if sum := dev.Load64(offHeadSum); dev.Load64(offMagic) != 0 && sum != 0 &&
			sum == headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize)) {
			return nil, fmt.Errorf("core: magic %#x but header checksum matches a formatted region: %w",
				dev.Load64(offMagic), ErrCorruptHeader)
		}
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "format")
		}
		if err := e.format(); err != nil {
			if a := e.aud; a != nil {
				a.TxEnd()
			}
			return nil, err
		}
		if a := e.aud; a != nil {
			a.DurablePoint("format")
			a.TxEnd()
		}
	} else {
		state := dev.Load64(offState)
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "recovery")
		}
		e.recover()
		if a := e.aud; a != nil {
			a.DurablePoint("recovery")
			a.TxEnd()
		}
		// Twin-copy validation, only meaningful at a quiescent open: under
		// IDL both copies must already agree byte-for-byte up to the
		// watermark, so any divergence is at-rest corruption of one copy
		// (recovery from MUT/CPY just copied one over the other, making the
		// comparison vacuous there). This is the redundancy dividend of the
		// twin-copy design: rot anywhere in either copy is detectable with
		// no extra checksums.
		if state == stateIDL && !cfg.DisableOpenVerify {
			if off := e.Verify(); off >= 0 {
				return nil, fmt.Errorf("core: twin copies diverge at main offset %d at quiescent open: %w",
					off, ErrCorruptPayload)
			}
		}
	}
	if dev.FaultsTripped() != openTrips {
		return nil, fmt.Errorf("core: media fault during open: %w", dev.FaultError())
	}
	heap, err := alloc.Open((*heapMem)(e), heapBase)
	if err != nil {
		return nil, fmt.Errorf("core: opening allocator: %w", err)
	}
	e.heap = heap
	e.wireConcurrency()
	return e, nil
}

// format initializes a blank device. A crash anywhere before the final
// magic store leaves the device unformatted; the next Open restarts from
// scratch, so initialization is failure-atomic.
func (e *Engine) format() error {
	d := e.dev
	d.Store64(offVersion, layoutVersion)
	d.Store64(offRegionSize, uint64(e.regionSize))
	d.Store64(offHeadSum, headerChecksum(layoutVersion, uint64(e.regionSize)))
	d.Store64(offState, stateIDL)
	// Roots are zero (nil) on a fresh device; format the heap.
	if _, err := alloc.Format((*rawMem)(e), heapBase, uint64(e.regionSize-heapBase)); err != nil {
		return fmt.Errorf("core: formatting heap: %w", err)
	}
	wm := e.heapTopRaw()
	d.Store64(offWatermark, wm)
	// Replicate the initialized prefix of main to back and persist it all.
	d.CopyWithin(e.backBase, e.mainBase, int(wm))
	d.PwbRange(0, headSize)
	d.PwbRange(e.mainBase, int(wm))
	d.PwbRange(e.backBase, int(wm))
	d.Pfence()
	d.Store64(offMagic, magicValue)
	d.Pwb(offMagic)
	d.Pfence()
	return nil
}

// recover restores consistency after a crash, per Algorithm 1: under MUT
// the back copy is authoritative, under CPY the main copy is, and under IDL
// both already agree. An unrecognized state word — impossible under the
// 8-byte-atomic-write assumption of the paper, but conceivable on hardware
// that tears below word granularity — is treated conservatively like MUT:
// restore main from back, rolling back whatever transaction the torn word
// belonged to, rather than silently skipping reconciliation.
func (e *Engine) recover() {
	d := e.dev
	wm := int(d.Load64(offWatermark))
	if wm > e.regionSize {
		wm = e.regionSize
	}
	switch d.Load64(offState) {
	case stateIDL:
		return
	case stateCPY:
		d.CopyWithin(e.backBase, e.mainBase, wm)
		d.PwbRange(e.backBase, wm)
	case stateMUT:
		d.CopyWithin(e.mainBase, e.backBase, wm)
		d.PwbRange(e.mainBase, wm)
	default:
		d.CopyWithin(e.mainBase, e.backBase, wm)
		d.PwbRange(e.mainBase, wm)
	}
	d.Pfence()
	d.Store64(offState, stateIDL)
	d.Pwb(offState)
	d.Pfence()
}

// RecoveryPending reports whether opening a device with these media
// contents would perform actual recovery work: the image holds a formatted
// region whose transaction state machine is not idle. Crash-chain harnesses
// use it to tell crashes that landed inside recover() from crashes whose
// reopen was a no-op.
func RecoveryPending(img []byte) bool {
	if len(img) < headSize {
		return false
	}
	load := func(off int) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(img[off+i])
		}
		return v
	}
	return load(offMagic) == magicValue && load(offState) != stateIDL
}

// ReplicationPending reports whether the image crashed between a commit's
// durable point and the end of replication (state CPY): the transaction is
// durable but back is stale, and recovery will re-run the main→back copy.
// Crash harnesses aiming failures at the replication path use it to census
// which captures actually landed mid-replicate rather than elsewhere in the
// round.
func ReplicationPending(img []byte) bool {
	if len(img) < headSize {
		return false
	}
	load := func(off int) uint64 {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(img[off+i])
		}
		return v
	}
	return load(offMagic) == magicValue && load(offState) == stateCPY
}

// wireConcurrency installs the variant-specific writer hooks and creates
// the flat combiner.
func (e *Engine) wireConcurrency() {
	switch e.cfg.Variant {
	case Rom, RomLog:
		e.hooks = flatcombine.Hooks[*Tx]{
			Begin: func() *Tx {
				e.rw.WriterArrive()
				return e.beginTx()
			},
			Commit: func(t *Tx, ops int) {
				t.batchOps = ops
				e.durablePoint(t)
				e.replicate(t)
				e.rw.WriterDepart()
			},
			Rollback: func(t *Tx) {
				e.rollbackTx(t)
				e.rw.WriterDepart()
			},
		}
	case RomLR:
		e.hooks = flatcombine.Hooks[*Tx]{
			Begin: func() *Tx {
				// First toggle of the update (§5.3): divert readers to the
				// back copy and wait for stragglers on main.
				e.lr.Toggle(leftright.Back)
				return e.beginTx()
			},
			Commit: func(t *Tx, ops int) {
				t.batchOps = ops
				e.durablePoint(t)
				// Second toggle: main is durable, let readers at it while
				// we bring back up to date.
				e.lr.Toggle(leftright.Main)
				e.replicate(t)
			},
			Rollback: func(t *Tx) {
				e.rollbackTx(t)
				e.lr.Toggle(leftright.Main)
			},
		}
	}
	e.comb = flatcombine.New(e.hooks)
}

// beginTx opens the single writer transaction: publish MUT durably, then
// let user code mutate main in place. Fence 1 of 4 (elided when the MUT
// marker's write-back already persisted, as under ordered-pwb models).
func (e *Engine) beginTx() *Tx {
	t := &e.wtx
	t.log.reset()
	e.dirty.reset()
	e.wmBumped = false
	t.loads, t.stores, t.writeBytes = 0, 0, 0
	t.batchOps = 1
	if a := e.aud; a != nil {
		a.TxBegin(e.Name(), "update")
	}
	st := e.dev.Stats()
	e.txStartPwb = st.Pwbs
	e.txStartFence = st.Pfences + st.Psyncs
	e.dev.Store64(offState, stateMUT)
	e.dev.Pwb(offState)
	if e.dev.NeedsFence() {
		e.dev.Pfence()
	}
	return t
}

// durablePoint commits the transaction to main: after the psync returns,
// the transaction is durable (ACID) even though back is stale. Fences 2
// and 3 of 4.
//
// This is where the batch's deferred write-backs land: one deduplicated pwb
// per dirty line (each line flushed at most once per durability round, no
// matter how many stores — from how many batched operations — hit it),
// ordered by the fence ahead of the CPY marker. Fences with no queued
// write-backs are provably no-ops and skipped, so an empty update
// transaction pays no flush traffic at all.
func (e *Engine) durablePoint(t *Tx) {
	d := e.dev
	if e.cfg.DeferPwb && t.log.enabled {
		for _, r := range t.log.compacted() {
			d.PwbRange(e.mainBase+int(r.Off), int(r.N))
		}
	} else if !e.cfg.EagerPwb {
		e.fset.Flush(d)
	}
	if d.NeedsFence() {
		d.Pfence()
	}
	d.Store64(offState, stateCPY)
	d.Pwb(offState)
	if d.NeedsFence() {
		d.Psync()
	}
	if a := e.aud; a != nil {
		a.DurablePoint("commit")
		if ba, ok := a.(ptm.BatchAuditor); ok {
			ba.BatchCommitted(t.batchOps)
		}
	}
}

// replicate brings back up to date with main and returns the state machine
// to IDL. Fence 4 of 4 (elided when replication left nothing queued, e.g.
// an empty transaction or an ordered-pwb model). The final IDL store needs
// no pwb: if it fails to persist, recovery from CPY re-runs this
// (idempotent) copy.
func (e *Engine) replicate(t *Tx) {
	d := e.dev
	var copied, extents uint64
	if t.log.enabled {
		// Copy every range before writing any back: distinct log ranges can
		// share a cache line, and interleaving copy/pwb per range would store
		// into lines already queued for write-back. The flush set (empty
		// since the durable point drained it) dedups the burst instead.
		eager := e.cfg.EagerPwb
		for _, r := range t.log.compacted() {
			d.CopyWithin(e.backBase+int(r.Off), e.mainBase+int(r.Off), int(r.N))
			if eager {
				d.PwbRange(e.backBase+int(r.Off), int(r.N))
			} else {
				e.fset.Add(e.backBase+int(r.Off), int(r.N))
			}
			copied += r.N
			extents++
		}
		if !eager {
			e.fset.Flush(d)
		}
	} else if e.dirty.enabled() {
		// Dirty-range replication for the basic variant: copy only the cache
		// lines this round stored to, in address order. Every copied line was
		// just dirtied, so each write-back hits a line with pending stores —
		// no audit_pwb_clean waste — and an empty or fault-refused round
		// copies nothing at all (the same media-fault smear guard the
		// zero-store check below gives the full-copy ablation).
		eager := e.cfg.EagerPwb
		for _, r := range e.dirty.extents() {
			d.CopyWithin(e.backBase+int(r.Off), e.mainBase+int(r.Off), int(r.N))
			if eager {
				d.PwbRange(e.backBase+int(r.Off), int(r.N))
			} else {
				e.fset.Add(e.backBase+int(r.Off), int(r.N))
			}
			copied += r.N
			extents++
		}
		if !eager && extents > 0 {
			e.fset.Flush(d)
		}
		e.dirty.reset()
	} else if t.stores > 0 {
		// A zero-store batch left main == back, so the full-watermark copy
		// has nothing to do. Skipping it matters beyond waste: a read-only
		// update that tripped a media fault must not drag the bulk copy
		// machinery across the faulted line and smear corruption into the
		// healthy twin.
		wm := int(d.Load64(offWatermark))
		d.CopyWithin(e.backBase, e.mainBase, wm)
		d.PwbRange(e.backBase, wm)
		copied = uint64(wm)
		extents = 1
	}
	e.replBytes.Add(copied)
	e.replExtents.Add(extents)
	if d.NeedsFence() {
		d.Pfence()
	}
	d.Store64(offState, stateIDL)
	st := d.Stats()
	e.pwbHist.Add(st.Pwbs - e.txStartPwb)
	if s := e.trace; s != nil {
		s.Emit(obs.TxEvent{
			Engine:      e.cfg.Variant.String(),
			Kind:        obs.KindUpdate,
			Outcome:     obs.OutcomeCommit,
			Reads:       t.loads,
			Writes:      t.stores,
			WriteBytes:  t.writeBytes,
			CopiedBytes: copied,
			Pwbs:        st.Pwbs - e.txStartPwb,
			Fences:      st.Pfences + st.Psyncs - e.txStartFence,
			BatchOps:    uint64(t.batchOps),
		})
	}
	if a := e.aud; a != nil {
		a.TxEnd()
	}
}

// rollbackTx reverts an in-flight transaction (user code returned an error
// or panicked) by restoring the modified ranges of main from back — the
// same copy recovery would perform, done eagerly.
func (e *Engine) rollbackTx(t *Tx) {
	d := e.dev
	// Drop the batch's deferred write-backs: the restore below flushes the
	// authoritative bytes itself (through the same deduplicated burst, since
	// restored ranges can share cache lines just like replicated ones). The
	// watermark write-back is the one entry that must survive the drop — the
	// media watermark has to stay ahead of the media heap top even when the
	// allocating transaction rolls back — so it is reissued here (only when
	// this round actually raised it: an unconditional reissue would be a
	// clean-line pwb, the waste class the auditor censuses) and drained by
	// the fence below.
	e.fset.Reset()
	if e.wmBumped {
		d.Pwb(offWatermark)
	}
	var copied, extents uint64
	if t.log.enabled {
		eager := e.cfg.EagerPwb
		for _, r := range t.log.compacted() {
			d.CopyWithin(e.mainBase+int(r.Off), e.backBase+int(r.Off), int(r.N))
			if eager {
				d.PwbRange(e.mainBase+int(r.Off), int(r.N))
			} else {
				e.fset.Add(e.mainBase+int(r.Off), int(r.N))
			}
			copied += r.N
			extents++
		}
		if !eager {
			e.fset.Flush(d)
		}
	} else if e.dirty.enabled() {
		// Dirty-range rollback: restore from back exactly the lines this
		// round stored to. Beyond symmetry with replicate, the narrow restore
		// strengthens the media-fault guard — the bulk copy never traverses
		// faulted lines the transaction did not itself touch.
		eager := e.cfg.EagerPwb
		for _, r := range e.dirty.extents() {
			d.CopyWithin(e.mainBase+int(r.Off), e.backBase+int(r.Off), int(r.N))
			if eager {
				d.PwbRange(e.mainBase+int(r.Off), int(r.N))
			} else {
				e.fset.Add(e.mainBase+int(r.Off), int(r.N))
			}
			copied += r.N
			extents++
		}
		if !eager {
			e.fset.Flush(d)
		}
		e.dirty.reset()
	} else if t.stores > 0 {
		// Same zero-store guard as replicate: a transaction that never
		// touched main (e.g. a load-only probe that hit a media fault and
		// was refused) has nothing to restore, and running the bulk copy
		// anyway would read through the faulted line and corrupt the copy
		// that was still good.
		wm := int(d.Load64(offWatermark))
		d.CopyWithin(e.mainBase, e.backBase, wm)
		d.PwbRange(e.mainBase, wm)
		copied = uint64(wm)
		extents = 1
	}
	e.replBytes.Add(copied)
	e.replExtents.Add(extents)
	if d.NeedsFence() {
		d.Pfence()
	}
	d.Store64(offState, stateIDL)
	e.rollbacks.Add(1)
	if s := e.trace; s != nil {
		st := d.Stats()
		s.Emit(obs.TxEvent{
			Engine:      e.cfg.Variant.String(),
			Kind:        obs.KindUpdate,
			Outcome:     obs.OutcomeRollback,
			Reads:       t.loads,
			Writes:      t.stores,
			WriteBytes:  t.writeBytes,
			CopiedBytes: copied,
			Pwbs:        st.Pwbs - e.txStartPwb,
			Fences:      st.Pfences + st.Psyncs - e.txStartFence,
		})
	}
	if a := e.aud; a != nil {
		a.TxEnd()
	}
}

// heapTopRaw reads the allocator's wilderness pointer directly (valid even
// before e.heap is opened, right after alloc.Format).
func (e *Engine) heapTopRaw() uint64 {
	h, err := alloc.Open((*rawMem)(e), heapBase)
	if err != nil {
		// format just succeeded; the heap must be openable
		panic(fmt.Sprintf("core: heap vanished after format: %v", err))
	}
	return h.Top()
}

// bumpWatermark raises the persistent high-water mark if the heap grew.
// The watermark is monotonic and lives in the header, outside the twin
// copies: if it persists "too high" after a rollback the only cost is
// copying a few extra (unreachable) bytes.
//
// Under the deduplicated flush discipline the write-back joins the batch's
// flush set (drained before the commit marker, so the watermark is durable
// by the durable point) instead of queueing the header line mid-mutation —
// the state-word store at commit lands on that same line, and an immediate
// pwb here would turn every allocating transaction into store_queued waste.
func (e *Engine) bumpWatermark() {
	top := e.heap.Top()
	if top > e.dev.Load64(offWatermark) {
		e.dev.Store64(offWatermark, top)
		e.wmBumped = true
		if e.cfg.EagerPwb || (e.cfg.DeferPwb && e.wtx.log.enabled) {
			e.dev.Pwb(offWatermark)
		} else {
			e.fset.Add(offWatermark, 8)
		}
	}
}

// Name implements ptm.PTM.
func (e *Engine) Name() string { return e.cfg.Variant.String() }

// Stats implements ptm.PTM.
func (e *Engine) Stats() ptm.TxStats {
	cs := e.comb.Stats()
	return ptm.TxStats{
		UpdateTxs:        e.updates.Load(),
		ReadTxs:          e.reads.Load(),
		Rollbacks:        e.rollbacks.Load(),
		Combined:         cs.Combined,
		Batches:          cs.Batches,
		BatchOps:         cs.BatchOps,
		CombineNs:        cs.CombineNs,
		ReplicatedBytes:  e.replBytes.Load(),
		ReplicateExtents: e.replExtents.Load(),
	}
}

// SetTrace installs (or, with nil, removes) the per-transaction trace sink.
// It implements obs.Traceable and must be called at a quiescent point: no
// transactions in flight. A flat-combined batch emits one update event
// covering every operation in the batch, so under single-threaded workloads
// events map one-to-one to Update calls.
func (e *Engine) SetTrace(s obs.Sink) { e.trace = s }

// SetAuditor installs (or, with nil, removes) the durability auditor. Like
// SetTrace it must be called at a quiescent point: no transactions in
// flight. Protocol work done before installation (e.g. format after New) is
// simply unaudited.
func (e *Engine) SetAuditor(a ptm.Auditor) { e.aud = a }

// Device exposes the underlying device for statistics and crash testing.
func (e *Engine) Device() *pmem.Device { return e.dev }

// RegionSize returns the size of each persistent copy.
func (e *Engine) RegionSize() int { return e.regionSize }

// DataOffsets returns the device offsets of user heap address 0 for every
// copy transactions may read — main and back, since RomulusLR readers load
// from the back instance mid-mutation. Fault-injection harnesses use it to
// address user data on the raw device.
func (e *Engine) DataOffsets() []int { return []int{e.mainBase, e.backBase} }

// Watermark returns the persistent high-water mark: the number of bytes of
// main that replication and recovery must copy.
func (e *Engine) Watermark() int { return int(e.dev.Load64(offWatermark)) }

// ReservedTail returns the device range past both region copies — bytes the
// engine never reads or writes, available to co-located structures such as
// the shard layer's flight recorder. size is zero on devices created without
// Config.ReserveTail (modulo sub-line alignment slack).
func (e *Engine) ReservedTail() (off, size int) {
	off = e.backBase + e.regionSize
	return off, e.dev.Size() - off
}

// TailRegion reports the reserved-tail range of a formatted device without
// opening an engine on it. Forensic tools (romulus-recover's flight-recorder
// dump) use it: a dump must locate the tail without running recovery, which
// Open would. The header checksum is verified so a torn header answers a
// typed error instead of a garbage offset.
func TailRegion(dev *pmem.Device) (off, size int, err error) {
	if dev.Load64(offMagic) != magicValue {
		return 0, 0, errors.New("core: device holds no formatted region")
	}
	if sum := headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize)); dev.Load64(offHeadSum) != sum {
		return 0, 0, fmt.Errorf("core: header checksum %#x, computed %#x: %w",
			dev.Load64(offHeadSum), sum, ErrCorruptHeader)
	}
	rs := int(dev.Load64(offRegionSize))
	off = headSize + 2*rs
	if rs < MinRegionSize || off > dev.Size() {
		return 0, 0, fmt.Errorf("%w: header says region %d on a %d-byte device", ErrRegionMismatch, rs, dev.Size())
	}
	return off, dev.Size() - off, nil
}

// AllocStats returns allocator counters.
func (e *Engine) AllocStats() alloc.Stats { return e.heap.Stats() }

// CheckHeap validates allocator invariants; used by recovery tests.
func (e *Engine) CheckHeap() error { return e.heap.CheckInvariants() }

// PwbHistogram returns the distribution of pwb instructions issued per
// committed update transaction — the measurement behind the paper's §6.2
// observation that the linked list averages ~10 pwbs while the red-black
// tree's histogram peaks around 50 and 130. Call at quiescent points.
func (e *Engine) PwbHistogram() hist.Histogram { return e.pwbHist.Snapshot() }

// ResetPwbHistogram clears the per-transaction pwb histogram, so that
// measurements can exclude setup work. Call at a quiescent point.
func (e *Engine) ResetPwbHistogram() { e.pwbHist = hist.Histogram{} }

// Verify checks the twin-copy invariant at a quiescent point: outside any
// transaction both copies must hold identical bytes up to the watermark.
// Returns the offset of the first divergence, or -1 when consistent. The
// watermark is clamped to the region size, like in recovery, so a rotted
// watermark cannot push the comparison out of bounds.
func (e *Engine) Verify() int {
	wm := int(e.dev.Load64(offWatermark))
	if wm > e.regionSize {
		wm = e.regionSize
	}
	main := e.dev.Bytes(e.mainBase, wm)
	back := e.dev.Bytes(e.backBase, wm)
	for i := range main {
		if main[i] != back[i] {
			return i
		}
	}
	return -1
}

// Close implements ptm.PTM. The persistent image remains valid.
func (e *Engine) Close() error {
	if a := e.aud; a != nil {
		a.EngineClose(e.Name())
	}
	return nil
}

// rawMem adapts the device for allocator access during format: plain
// stores into main with no logging (the caller persists in bulk afterward).
type rawMem Engine

func (m *rawMem) Load64(off uint64) uint64 {
	e := (*Engine)(m)
	return e.dev.Load64(e.mainBase + int(off))
}

func (m *rawMem) Store64(off uint64, v uint64) {
	e := (*Engine)(m)
	e.dev.Store64(e.mainBase+int(off), v)
}

// heapMem adapts the device for allocator access inside update
// transactions: every allocator store is interposed exactly like a user
// store (logged and flushed), so allocator metadata is rolled back with
// the transaction (§4.4).
type heapMem Engine

func (m *heapMem) Load64(off uint64) uint64 {
	e := (*Engine)(m)
	return e.dev.Load64(e.mainBase + int(off))
}

func (m *heapMem) Store64(off uint64, v uint64) {
	e := (*Engine)(m)
	e.wtx.Store64(ptm.Ptr(off), v)
}
