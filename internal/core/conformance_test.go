package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/ptmtest"
)

func TestConformance(t *testing.T) {
	for _, v := range []core.Variant{core.Rom, core.RomLog, core.RomLR} {
		t.Run(v.String(), func(t *testing.T) {
			cfg := core.Config{Variant: v}
			ptmtest.Run(t, ptmtest.Factory{
				Name: v.String(),
				New: func(tb testing.TB) ptmtest.Engine {
					e, err := core.New(1<<20, cfg)
					if err != nil {
						tb.Fatal(err)
					}
					return e
				},
				Reopen: func(tb testing.TB, img []byte) (ptmtest.Engine, error) {
					return core.Open(pmem.FromImage(img, pmem.ModelDRAM), cfg)
				},
			})
		})
	}
}

func TestConformanceAblations(t *testing.T) {
	cases := map[string]core.Config{
		"no-log-merge": {Variant: core.RomLog, DisableLogMerge: true},
		"defer-pwb":    {Variant: core.RomLog, DeferPwb: true},
		"no-combining": {Variant: core.RomLog, DisableFlatCombining: true},
		"lr-defer-pwb": {Variant: core.RomLR, DeferPwb: true},
		"eager-pwb":    {Variant: core.RomLog, EagerPwb: true},
		"rom-eager":    {Variant: core.Rom, EagerPwb: true},
		"rom-full":     {Variant: core.Rom, FullReplicate: true},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := cfg
			ptmtest.Run(t, ptmtest.Factory{
				Name: name,
				New: func(tb testing.TB) ptmtest.Engine {
					e, err := core.New(1<<20, cfg)
					if err != nil {
						tb.Fatal(err)
					}
					return e
				},
				Reopen: func(tb testing.TB, img []byte) (ptmtest.Engine, error) {
					return core.Open(pmem.FromImage(img, pmem.ModelDRAM), cfg)
				},
			})
		})
	}
}
