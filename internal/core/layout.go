// Package core implements the Romulus persistent transactional memory and
// its two variants, following §4 and §5 of the paper:
//
//   - Romulus (basic): twin copies of the data; at commit the whole used
//     prefix of main is replicated to back (Algorithm 1).
//   - RomulusLog: a volatile redo log records the address/length of every
//     store, so only the modified ranges are replicated (§4.7).
//   - RomulusLR: RomulusLog plus Left-Right synchronization, giving
//     read-only transactions wait-free progress via synthetic pointers into
//     the back region (§5.3).
//
// Every transaction issues at most four persistence fences regardless of
// its size: one at begin (after publishing MUT), and at commit one pfence,
// one psync (the durability point) and one final pfence after replication.
package core

import "repro/internal/ptm"

// Device layout:
//
//	[ head : headSize ][ main : regionSize ][ back : regionSize ]
//
// The persistent header is not replicated (Figure 2 of the paper); it holds
// the transaction state machine and the bookkeeping needed to bound copies.
const (
	offMagic      = 0   // format marker, written last during initialization
	offVersion    = 8   // layout version
	offRegionSize = 16  // size of each of main and back
	offWatermark  = 24  // monotonic high-water mark of used bytes in main
	offHeadSum    = 32  // checksum of the static header words (magic, version, region size)
	offState      = 64  // IDL/MUT/CPY, on its own cache line
	headSize      = 256 // one-time cost; keeps main cache-line aligned
)

// Transaction states (the paper's IDL, MUT, CPY).
const (
	stateIDL uint64 = 0 // outside a transaction: both copies consistent
	stateMUT uint64 = 1 // user code mutating main: back is consistent
	stateCPY uint64 = 2 // committed, replicating to back: main is consistent
)

const (
	magicValue    = 0x524F4D554C555331 // "ROMULUS1"
	layoutVersion = 1
)

// Main-region layout (offsets are Ptr values, i.e. relative to main):
// the first cache line is reserved so that Ptr 0 stays an unambiguous nil,
// then the root-pointer array, then the allocator-managed heap.
const (
	rootsOff = 64
	heapBase = rootsOff + ptm.NumRoots*8
)
