package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ptm"
)

// Bank-transfer workload: concurrent transfers preserve the total balance,
// and every read transaction observes a consistent (fully-transferred)
// snapshot. This exercises durable linearizability's visibility half for
// all three engines: C-RW-WP for Rom/RomLog, Left-Right for RomLR.
func TestConcurrentBankTransfers(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		const accounts = 32
		const initial = 1000
		var arr ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			arr, err = tx.Alloc(accounts * 8)
			if err != nil {
				return err
			}
			for i := 0; i < accounts; i++ {
				tx.Store64(arr+ptm.Ptr(i*8), initial)
			}
			tx.SetRoot(0, arr)
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		const writers, readers, transfers = 4, 4, 300
		var wwg, rwg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < writers; w++ {
			wwg.Add(1)
			go func(seed int64) {
				defer wwg.Done()
				h, err := e.NewHandle()
				if err != nil {
					t.Error(err)
					return
				}
				defer h.Release()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < transfers; i++ {
					from := rng.Intn(accounts)
					to := rng.Intn(accounts)
					amount := uint64(rng.Intn(10))
					if err := h.Update(func(tx ptm.Tx) error {
						a := tx.Root(0)
						fv := tx.Load64(a + ptm.Ptr(from*8))
						if fv < amount {
							return nil
						}
						tx.Store64(a+ptm.Ptr(from*8), fv-amount)
						tv := tx.Load64(a + ptm.Ptr(to*8))
						tx.Store64(a+ptm.Ptr(to*8), tv+amount)
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(int64(w))
		}
		for r := 0; r < readers; r++ {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				h, err := e.NewHandle()
				if err != nil {
					t.Error(err)
					return
				}
				defer h.Release()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := h.Read(func(tx ptm.Tx) error {
						a := tx.Root(0)
						var sum uint64
						for i := 0; i < accounts; i++ {
							sum += tx.Load64(a + ptm.Ptr(i*8))
						}
						if sum != accounts*initial {
							return fmt.Errorf("inconsistent snapshot: sum = %d, want %d", sum, accounts*initial)
						}
						return nil
					}); err != nil {
						t.Error(err)
						return
					}
					// On a single-CPU machine a non-yielding reader burns
					// whole scheduler quanta and starves the writers.
					runtime.Gosched()
				}
			}()
		}
		wwg.Wait()
		close(stop)
		rwg.Wait()

		// Final audit.
		if err := e.Read(func(tx ptm.Tx) error {
			a := tx.Root(0)
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += tx.Load64(a + ptm.Ptr(i*8))
			}
			if sum != accounts*initial {
				return fmt.Errorf("final sum = %d", sum)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// Concurrent allocation/free churn through the flat combiner must keep the
// sequential allocator consistent.
func TestConcurrentAllocFree(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		const workers = 6
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				h, err := e.NewHandle()
				if err != nil {
					t.Error(err)
					return
				}
				defer h.Release()
				rng := rand.New(rand.NewSource(seed))
				var mine []ptm.Ptr
				for i := 0; i < 150; i++ {
					if len(mine) == 0 || rng.Intn(2) == 0 {
						if err := h.Update(func(tx ptm.Tx) error {
							p, err := tx.Alloc(8 + rng.Intn(200))
							if err != nil {
								return err
							}
							tx.Store64(p, uint64(seed))
							mine = append(mine, p)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					} else {
						i := rng.Intn(len(mine))
						p := mine[i]
						if err := h.Update(func(tx ptm.Tx) error {
							if got := tx.Load64(p); got != uint64(seed) {
								return fmt.Errorf("my block holds %d, want %d", got, seed)
							}
							return tx.Free(p)
						}); err != nil {
							t.Error(err)
							return
						}
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
				}
			}(int64(w))
		}
		wg.Wait()
		if err := e.CheckHeap(); err != nil {
			t.Fatal(err)
		}
	})
}

// Under RomulusLR, read transactions must make progress while an update is
// in flight (wait-freedom): readers run against the back copy during the
// mutation phase.
func TestRomLRReadersProgressDuringUpdate(t *testing.T) {
	e := newEngine(t, RomLR)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(64)
		tx.SetRoot(0, p)
		tx.Store64(p, 1)
		return err
	})

	inTx := make(chan struct{})
	release := make(chan struct{})
	var updateDone sync.WaitGroup
	updateDone.Add(1)
	go func() {
		defer updateDone.Done()
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 2)
			close(inTx)
			<-release // hold the transaction open
			return nil
		})
	}()
	<-inTx
	// The writer is mid-transaction. Readers must complete and must see the
	// pre-transaction value (durable snapshot on back).
	var reads atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := e.NewHandle()
			defer h.Release()
			for i := 0; i < 100; i++ {
				h.Read(func(tx ptm.Tx) error {
					if got := tx.Load64(tx.Root(0)); got != 1 {
						t.Errorf("reader saw %d during in-flight update, want 1", got)
					}
					reads.Add(1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if reads.Load() != 400 {
		t.Fatalf("only %d reads completed while writer in flight", reads.Load())
	}
	close(release)
	updateDone.Wait()
	e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(tx.Root(0)); got != 2 {
			t.Errorf("value after update = %d, want 2", got)
		}
		return nil
	})
}

// Flat combining should actually combine under contention: with many
// simultaneous writers, some operations must be executed by a combiner on
// behalf of another thread.
func TestFlatCombiningAggregates(t *testing.T) {
	e := newEngine(t, RomLog)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(8)
		return err
	})
	var wg sync.WaitGroup
	const workers, iters = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := e.NewHandle()
			defer h.Release()
			for i := 0; i < iters; i++ {
				h.Update(func(tx ptm.Tx) error {
					tx.Store64(p, tx.Load64(p)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(p); got != workers*iters {
			t.Errorf("counter = %d, want %d", got, workers*iters)
		}
		return nil
	})
	if s := e.Stats(); s.Combined == 0 {
		t.Log("warning: no operations were combined (timing-dependent)")
	} else {
		t.Logf("combined %d operations", s.Combined)
	}
}
