package core

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// FuzzCrashRecovery interprets fuzz input as (store offsets, crash point,
// crash policy) and checks the all-or-nothing property. Seeds run in every
// `go test`; `go test -fuzz FuzzCrashRecovery ./internal/core` explores.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(3), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 255, 255}, uint8(10), uint8(1))
	f.Add([]byte{7, 7, 9}, uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, offsets []byte, crashAt, policyPick uint8) {
		if len(offsets) == 0 || len(offsets) > 64 {
			return
		}
		e, err := New(1<<16, Config{Variant: RomLog})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(2048)
			if err != nil {
				return err
			}
			tx.SetRoot(0, p)
			for _, o := range offsets {
				tx.Store64(p+ptm.Ptr(int(o)%256*8), 100)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		policies := []pmem.CrashPolicy{
			pmem.DropAll,
			pmem.KeepQueued,
			{QueuedPersistProb: 0.5, EvictDirtyProb: 0.5, TearWords: true},
		}
		policy := policies[int(policyPick)%len(policies)]
		dev := e.Device()
		var img []byte
		n := uint8(0)
		hook := func() {
			n++
			if img == nil && n == crashAt {
				img = dev.CrashImage(policy)
			}
		}
		dev.SetHooks(&pmem.Hooks{
			Store: func(uint64) { hook() },
			Pwb:   func(uint64) { hook() },
			Fence: hook,
		})
		if err := e.Update(func(tx ptm.Tx) error {
			for _, o := range offsets {
				tx.Store64(p+ptm.Ptr(int(o)%256*8), 200)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		dev.SetHooks(nil)
		if img == nil {
			img = dev.CrashImage(policy) // crash after commit
		}
		re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: RomLog})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		re.Read(func(tx ptm.Tx) error {
			base := tx.Root(0)
			first := tx.Load64(base + ptm.Ptr(int(offsets[0])%256*8))
			if first != 100 && first != 200 {
				t.Fatalf("impossible value %d", first)
			}
			for _, o := range offsets {
				got := tx.Load64(base + ptm.Ptr(int(o)%256*8))
				if got != first {
					t.Fatalf("torn transaction: offset %d = %d, first = %d", o, got, first)
				}
			}
			return nil
		})
		if err := re.CheckHeap(); err != nil {
			t.Fatalf("heap: %v", err)
		}
	})
}
