package core

import (
	"testing"

	"repro/internal/ptm"
)

func TestPwbHistogramRecordsPerTx(t *testing.T) {
	e := newEngine(t, RomLog)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(4096)
		return err
	})
	// Small transactions and one large one.
	for i := 0; i < 10; i++ {
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, uint64(i))
			return nil
		})
	}
	e.Update(func(tx ptm.Tx) error {
		for i := 0; i < 4096; i += 8 {
			tx.Store64(p+ptm.Ptr(i), 1)
		}
		return nil
	})
	h := e.PwbHistogram()
	if h.Count() != 12 {
		t.Fatalf("histogram count = %d, want 12", h.Count())
	}
	if h.Max() <= h.Quantile(0.5) {
		t.Errorf("large tx not visible: max %d, p50 %d", h.Max(), h.Quantile(0.5))
	}
	if h.Mean() <= 0 {
		t.Error("mean is zero")
	}
}

func TestVerifyTwinCopies(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		for i := 0; i < 20; i++ {
			e.Update(func(tx ptm.Tx) error {
				var err error
				if p.IsNil() {
					p, err = tx.Alloc(256)
					if err != nil {
						return err
					}
					tx.SetRoot(0, p)
				}
				tx.Store64(p+ptm.Ptr((i%32)*8), uint64(i))
				return nil
			})
			if off := e.Verify(); off >= 0 {
				t.Fatalf("iteration %d: copies diverge at offset %d", i, off)
			}
		}
		// After a rollback the copies must also agree.
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 0xDEAD)
			return errFake
		})
		if off := e.Verify(); off >= 0 {
			t.Fatalf("after rollback: copies diverge at offset %d", off)
		}
	})
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }
