package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

const testRegion = 1 << 18 // 256 KiB per copy

var allVariants = []Variant{Rom, RomLog, RomLR}

func newEngine(t testing.TB, v Variant) *Engine {
	t.Helper()
	e, err := New(testRegion, Config{Variant: v, Model: pmem.ModelDRAM})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func forEachVariant(t *testing.T, fn func(t *testing.T, v Variant)) {
	for _, v := range allVariants {
		t.Run(v.String(), func(t *testing.T) { fn(t, v) })
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{Rom: "rom", RomLog: "romlog", RomLR: "romlr"}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("Variant(%d).String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestNewRejectsTinyRegion(t *testing.T) {
	if _, err := New(100, Config{}); err == nil {
		t.Error("New accepted a tiny region")
	}
}

func TestCommitAndReadBack(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			if err != nil {
				return err
			}
			tx.Store64(p, 12345)
			tx.Store8(p+8, 0xEE)
			tx.SetRoot(0, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		err = e.Read(func(tx ptm.Tx) error {
			q := tx.Root(0)
			if q != p {
				return fmt.Errorf("root = %d, want %d", q, p)
			}
			if got := tx.Load64(q); got != 12345 {
				return fmt.Errorf("Load64 = %d", got)
			}
			if got := tx.Load8(q + 8); got != 0xEE {
				return fmt.Errorf("Load8 = %#x", got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllSizedAccessors(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		err := e.Update(func(tx ptm.Tx) error {
			p, err := tx.Alloc(128)
			if err != nil {
				return err
			}
			tx.Store8(p, 0x11)
			tx.Store16(p+2, 0x2222)
			tx.Store32(p+4, 0x33333333)
			tx.Store64(p+8, 0x4444444444444444)
			tx.StoreBytes(p+16, []byte("romulus"))
			if tx.Load8(p) != 0x11 || tx.Load16(p+2) != 0x2222 ||
				tx.Load32(p+4) != 0x33333333 || tx.Load64(p+8) != 0x4444444444444444 {
				return errors.New("readback inside tx failed")
			}
			buf := make([]byte, 7)
			tx.LoadBytes(p+16, buf)
			if string(buf) != "romulus" {
				return fmt.Errorf("LoadBytes = %q", buf)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestErrorRollsBackEverything(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(32)
			if err != nil {
				return err
			}
			tx.Store64(p, 1)
			tx.SetRoot(0, p)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		allocsBefore := e.AllocStats().Allocs
		boom := errors.New("boom")
		err := e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 999)
			q, err := tx.Alloc(64)
			if err != nil {
				return err
			}
			tx.SetRoot(1, q)
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
		if err := e.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(0)); got != 1 {
				return fmt.Errorf("store not rolled back: %d", got)
			}
			if !tx.Root(1).IsNil() {
				return errors.New("root 1 set despite rollback")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// The allocation must have been rolled back too (allocator
		// metadata is transactional, §4.4).
		if got := e.AllocStats().Allocs; got != allocsBefore {
			t.Errorf("allocator did not roll back: %d allocs, want %d", got, allocsBefore)
		}
		if s := e.Stats(); s.Rollbacks == 0 {
			t.Error("rollback not counted")
		}
	})
}

func TestPanicRollsBackAndPropagates(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(32)
			if err == nil {
				tx.Store64(p, 7)
				tx.SetRoot(0, p)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != "blam" {
					t.Errorf("recovered %v", r)
				}
			}()
			e.Update(func(tx ptm.Tx) error {
				tx.Store64(p, 888)
				panic("blam")
			})
		}()
		if err := e.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(p); got != 7 {
				return fmt.Errorf("value after panic = %d, want 7", got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Engine must still be usable.
		if err := e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 8)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadOnlyEnforced(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		defer func() {
			if recover() == nil {
				t.Error("store in read transaction did not panic")
			}
		}()
		e.Read(func(tx ptm.Tx) error {
			tx.Store64(ptm.Ptr(rootsOff), 1)
			return nil
		})
	})
}

func TestOutOfRegionAccessPanics(t *testing.T) {
	e := newEngine(t, RomLog)
	defer func() {
		if recover() == nil {
			t.Error("out-of-region access did not panic")
		}
	}()
	e.Read(func(tx ptm.Tx) error {
		_ = tx.Load64(ptm.Ptr(testRegion))
		return nil
	})
}

func TestRootIndexValidation(t *testing.T) {
	e := newEngine(t, RomLog)
	defer func() {
		if recover() == nil {
			t.Error("bad root index did not panic")
		}
	}()
	e.Read(func(tx ptm.Tx) error {
		_ = tx.Root(ptm.NumRoots)
		return nil
	})
}

func TestAllocFreeAcrossTransactions(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(100)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Update(func(tx ptm.Tx) error {
			return tx.Free(p)
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.Update(func(tx ptm.Tx) error {
			if err := tx.Free(p); !errors.Is(err, ptm.ErrBadFree) {
				return fmt.Errorf("double free = %v, want ErrBadFree", err)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocZeroesMemory(t *testing.T) {
	e := newEngine(t, RomLog)
	var p ptm.Ptr
	// Dirty a block, free it, reallocate: must come back zeroed.
	if err := e.Update(func(tx ptm.Tx) error {
		q, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		for i := 0; i < 64; i += 8 {
			tx.Store64(q+ptm.Ptr(i), ^uint64(0))
		}
		return tx.Free(q)
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(64)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.Read(func(tx ptm.Tx) error {
		for i := 0; i < 64; i += 8 {
			if got := tx.Load64(p + ptm.Ptr(i)); got != 0 {
				t.Errorf("byte %d of fresh allocation = %#x", i, got)
			}
		}
		return nil
	})
}

func TestOutOfMemoryErrorMapped(t *testing.T) {
	e := newEngine(t, RomLog)
	err := e.Update(func(tx ptm.Tx) error {
		_, err := tx.Alloc(testRegion * 2)
		return err
	})
	if !errors.Is(err, ptm.ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

// Romulus's headline property: at most 4 persistence fences per update
// transaction, independent of transaction size (Table 1).
func TestAtMostFourFencesPerTransaction(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(8192)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		for _, stores := range []int{1, 10, 100, 1000} {
			e.Device().ResetStats()
			if err := e.Update(func(tx ptm.Tx) error {
				for i := 0; i < stores; i++ {
					tx.Store64(p+ptm.Ptr((i*8)%8192), uint64(i))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			s := e.Device().Stats()
			fences := s.Pfences + s.Psyncs
			if fences > 4 {
				t.Errorf("%d stores: %d fences, want <= 4", stores, fences)
			}
		}
	})
}

// Read-only transactions must issue no persistence operations at all.
func TestReadsAreFenceFree(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			tx.SetRoot(0, p)
			return err
		})
		e.Device().ResetStats()
		for i := 0; i < 100; i++ {
			e.Read(func(tx ptm.Tx) error {
				_ = tx.Load64(tx.Root(0))
				return nil
			})
		}
		s := e.Device().Stats()
		if s.Pwbs != 0 || s.Pfences != 0 || s.Psyncs != 0 || s.Stores != 0 {
			t.Errorf("read transactions touched persistence: %+v", s)
		}
	})
}

// RomulusLog — and, since dirty-range tracking, basic Romulus too — must
// copy only modified ranges at commit; the FullReplicate ablation preserves
// the paper's original full-used-prefix copy (the §4.7 contrast, now
// measured against the ablation rather than the default basic engine).
func TestReplicationVolume(t *testing.T) {
	measure := func(cfg Config) uint64 {
		cfg.Model = pmem.ModelDRAM
		e, err := New(testRegion, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64 << 10) // grow the watermark to ~64 KiB
			return err
		})
		e.Device().ResetStats()
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 42) // single 8-byte store
			return nil
		})
		return e.Device().Stats().BytesPersisted
	}
	logBytes := measure(Config{Variant: RomLog})
	dirtyBytes := measure(Config{Variant: Rom})
	fullBytes := measure(Config{Variant: Rom, FullReplicate: true})
	if logBytes >= fullBytes/8 {
		t.Errorf("RomulusLog persisted %d bytes, full-replicate basic %d; expected an order-of-magnitude gap", logBytes, fullBytes)
	}
	if dirtyBytes >= fullBytes/8 {
		t.Errorf("dirty-range basic persisted %d bytes, full-replicate basic %d; expected an order-of-magnitude gap", dirtyBytes, fullBytes)
	}
	if logBytes > 1024 {
		t.Errorf("RomulusLog persisted %d bytes for one store", logBytes)
	}
	if dirtyBytes > 1024 {
		t.Errorf("dirty-range basic persisted %d bytes for one store", dirtyBytes)
	}
}

func TestReopenFromImage(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		e.Update(func(tx ptm.Tx) error {
			p, err := tx.Alloc(32)
			if err != nil {
				return err
			}
			tx.Store64(p, 4242)
			tx.SetRoot(3, p)
			return nil
		})
		// Clean shutdown: everything fenced. Rebuild a device from the
		// persisted image only.
		img := e.Device().CrashImage(pmem.DropAll)
		e2, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(3)); got != 4242 {
				return fmt.Errorf("value after reopen = %d", got)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestOpenRejectsMismatchedDevice(t *testing.T) {
	e := newEngine(t, RomLog)
	img := e.Device().CrashImage(pmem.DropAll)
	// Truncate the image: region size in the header no longer matches.
	short := img[:len(img)-4096]
	if _, err := Open(pmem.FromImage(short, pmem.ModelDRAM), Config{}); err == nil {
		t.Error("Open accepted a truncated device")
	}
}

func TestWatermarkGrowsWithAllocations(t *testing.T) {
	e := newEngine(t, RomLog)
	w0 := e.Watermark()
	e.Update(func(tx ptm.Tx) error {
		_, err := tx.Alloc(4096)
		return err
	})
	if e.Watermark() <= w0 {
		t.Errorf("watermark did not grow: %d -> %d", w0, e.Watermark())
	}
}

func TestStatsCounters(t *testing.T) {
	e := newEngine(t, RomLog)
	e.Update(func(tx ptm.Tx) error { return nil })
	e.Read(func(tx ptm.Tx) error { return nil })
	s := e.Stats()
	if s.UpdateTxs != 1 || s.ReadTxs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if e.Name() != "romlog" {
		t.Errorf("Name = %q", e.Name())
	}
	if err := e.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestHandleAPI(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v Variant) {
		e := newEngine(t, v)
		h, err := e.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		var p ptm.Ptr
		if err := h.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(16)
			if err == nil {
				tx.Store64(p, 99)
			}
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if err := h.Read(func(tx ptm.Tx) error {
			if tx.Load64(p) != 99 {
				return errors.New("bad value")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDisableFlatCombining(t *testing.T) {
	e, err := New(testRegion, Config{Variant: RomLog, DisableFlatCombining: true})
	if err != nil {
		t.Fatal(err)
	}
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(16)
		if err == nil {
			tx.Store64(p, 5)
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("no")
	if err := e.Update(func(tx ptm.Tx) error {
		tx.Store64(p, 6)
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(p); got != 5 {
			t.Errorf("rollback failed without combining: %d", got)
		}
		return nil
	})
}

func TestDeferPwbStillDurable(t *testing.T) {
	for _, v := range []Variant{RomLog, RomLR} {
		e, err := New(testRegion, Config{Variant: v, DeferPwb: true})
		if err != nil {
			t.Fatal(err)
		}
		var p ptm.Ptr
		e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(64)
			if err == nil {
				tx.Store64(p, 31337)
				tx.SetRoot(0, p)
			}
			return err
		})
		img := e.Device().CrashImage(pmem.DropAll)
		e2, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		e2.Read(func(tx ptm.Tx) error {
			if got := tx.Load64(tx.Root(0)); got != 31337 {
				t.Errorf("%v: deferred-pwb commit lost: %d", v, got)
			}
			return nil
		})
	}
}
