package core

import (
	"slices"

	"repro/internal/pmem"
)

// dirtySet is the per-durability-round dirty-extent tracker of the basic
// Rom variant: a cache-line-granular record of every main-region line the
// round's stores touched, kept in DRAM where the log variants keep their
// range log. replicate() copies exactly these lines to back — collapsing
// the basic algorithm's back-copy from O(heap watermark) to O(dirty) — and
// rollback restores exactly these lines from back. Recovery never consults
// it: after a crash the full-prefix copy of Algorithm 1 still runs, so the
// crash-safety argument is unchanged (see DESIGN.md).
//
// Like pmem.FlushSet, membership is an epoch-stamped array: reset is O(1)
// and add never allocates once the line buffer has grown to the working-set
// size. Line granularity means bytes sharing a line with a store are
// re-copied; that is harmless because the twin copies agree on every byte
// the round did not store (all mutations of main are interposed, and bytes
// never stored are zero in both copies), so copying a whole dirty line
// writes back only bytes that are already equal or just became
// authoritative.
//
// Only the single writer (the combiner thread) touches the set, like wtx
// and fset. Offsets are region-relative; mainBase and backBase are
// line-aligned, so region lines coincide with device lines.
type dirtySet struct {
	stamps  []uint32
	epoch   uint32
	lines   []int32
	scratch []rng
}

// init sizes the set for a region of size bytes and enables it. The zero
// dirtySet is disabled: add is a no-op and extents returns nothing.
func (s *dirtySet) init(size int) {
	s.stamps = make([]uint32, (size+pmem.LineSize-1)/pmem.LineSize)
	s.epoch = 1
}

// enabled reports whether init has run.
func (s *dirtySet) enabled() bool { return s.stamps != nil }

// add marks every cache line overlapping the region-relative byte range
// [off, off+n) dirty. Lines already dirty this round are skipped.
func (s *dirtySet) add(off, n uint64) {
	if s.stamps == nil || n == 0 {
		return
	}
	last := int((off + n - 1) / pmem.LineSize)
	for line := int(off / pmem.LineSize); line <= last; line++ {
		if s.stamps[line] != s.epoch {
			s.stamps[line] = s.epoch
			s.lines = append(s.lines, int32(line))
		}
	}
}

// len returns the number of distinct dirty lines this round.
func (s *dirtySet) len() int { return len(s.lines) }

// reset empties the set in O(1) by advancing the epoch.
func (s *dirtySet) reset() {
	s.lines = s.lines[:0]
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: stamps may alias, clear them
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

// extents returns the round's dirty lines as sorted, line-aligned,
// maximally coalesced [Off, Off+N) byte ranges. Sorting happens here, once
// per round, instead of keeping the set ordered per store; the returned
// slice is scratch reused across rounds. Adjacent dirty lines fuse so a
// sequential store burst costs one CopyWithin, but clean lines are never
// bridged: every line of every extent was stored this round, which is what
// keeps the replication write-back burst free of audit_pwb_clean waste
// (MOD-style minimal ordering — clean lines are neither copied, flushed,
// nor re-fenced).
func (s *dirtySet) extents() []rng {
	if len(s.lines) == 0 {
		return nil
	}
	slices.Sort(s.lines)
	out := s.scratch[:0]
	start, prev := s.lines[0], s.lines[0]
	for _, line := range s.lines[1:] {
		if line == prev+1 {
			prev = line
			continue
		}
		out = append(out, rng{uint64(start) * pmem.LineSize, uint64(prev-start+1) * pmem.LineSize})
		start, prev = line, line
	}
	out = append(out, rng{uint64(start) * pmem.LineSize, uint64(prev-start+1) * pmem.LineSize})
	s.scratch = out
	return out
}
