package core

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/leftright"
	"repro/internal/obs"
	"repro/internal/ptm"
)

// Tx is the engine's transaction handle, implementing ptm.Tx. Writer
// transactions operate in place on main; RomulusLR read transactions may be
// directed at the back copy, in which case every access applies the
// synthetic-pointer offset (base points at back; Figure 3 of the paper).
type Tx struct {
	e        *Engine
	base     int // mainBase, or backBase for RomulusLR readers on back
	readOnly bool
	log      rangeLog

	// Trace accounting (plain fields: each Tx has a single mutator — the
	// combiner thread for the writer, the owning goroutine for readers).
	// Writes/writeBytes include allocator-metadata stores, which flow
	// through the same interposition path as user stores.
	loads      uint64
	stores     uint64
	writeBytes uint64
	// batchOps is the number of flat-combined operations this durability
	// round carries, set by the Commit hook before the durable point.
	batchOps int
}

var _ ptm.Tx = (*Tx)(nil)

func (t *Tx) mustWrite() {
	if t.readOnly {
		panic("core: mutating operation inside a read-only transaction")
	}
}

func (t *Tx) checkRange(p ptm.Ptr, n int) {
	if int(p)+n > t.e.regionSize {
		panic(fmt.Sprintf("core: access [%d,%d) outside region of %d bytes", p, int(p)+n, t.e.regionSize))
	}
}

// Load8 implements ptm.Tx.
func (t *Tx) Load8(p ptm.Ptr) byte {
	t.checkRange(p, 1)
	t.loads++
	return t.e.dev.Load8(t.base + int(p))
}

// Load16 implements ptm.Tx.
func (t *Tx) Load16(p ptm.Ptr) uint16 {
	t.checkRange(p, 2)
	t.loads++
	return t.e.dev.Load16(t.base + int(p))
}

// Load32 implements ptm.Tx.
func (t *Tx) Load32(p ptm.Ptr) uint32 {
	t.checkRange(p, 4)
	t.loads++
	return t.e.dev.Load32(t.base + int(p))
}

// Load64 implements ptm.Tx.
func (t *Tx) Load64(p ptm.Ptr) uint64 {
	t.checkRange(p, 8)
	t.loads++
	return t.e.dev.Load64(t.base + int(p))
}

// LoadBytes implements ptm.Tx.
func (t *Tx) LoadBytes(p ptm.Ptr, dst []byte) {
	t.checkRange(p, len(dst))
	t.loads++
	t.e.dev.LoadBytes(t.base+int(p), dst)
}

// store interposition: in-place modification of main, log entry (address
// and length only), and a write-back of the modified line. The paper notes
// the order of the three steps is free as long as the pwb precedes the
// commit fence, so by default the line joins the batch's deduplicated
// flush set and is written back exactly once at the durable point, however
// many stores (from however many combined operations) dirtied it.
func (t *Tx) flush(off, n int) {
	e := t.e
	switch {
	case e.cfg.DeferPwb && t.log.enabled:
		// Flushed from the compacted log at commit.
	case e.cfg.EagerPwb:
		e.dev.PwbRange(off, n)
	default:
		e.fset.Add(off, n)
	}
}

// record routes a store's [p, p+n) range to the round's dirty tracker: the
// volatile range log for the log variants, or the basic variant's
// cache-line dirty set. At most one of the two is enabled per engine, and
// the dirty set's own nil-stamps guard makes the doubly-disabled
// combination (a FullReplicate rom engine) a no-op — so the hot path pays
// one predicted branch here instead of an unconditional log call whose body
// re-tests enablement on every store.
func (t *Tx) record(p ptm.Ptr, n uint64) {
	if t.log.enabled {
		t.log.add(uint64(p), n)
	} else {
		t.e.dirty.add(uint64(p), n)
	}
}

// Store8 implements ptm.Tx.
func (t *Tx) Store8(p ptm.Ptr, v byte) {
	t.mustWrite()
	t.checkRange(p, 1)
	off := t.e.mainBase + int(p)
	t.e.dev.Store8(off, v)
	t.record(p, 1)
	t.stores++
	t.writeBytes++
	t.flush(off, 1)
}

// Store16 implements ptm.Tx.
func (t *Tx) Store16(p ptm.Ptr, v uint16) {
	t.mustWrite()
	t.checkRange(p, 2)
	off := t.e.mainBase + int(p)
	t.e.dev.Store16(off, v)
	t.record(p, 2)
	t.stores++
	t.writeBytes += 2
	t.flush(off, 2)
}

// Store32 implements ptm.Tx.
func (t *Tx) Store32(p ptm.Ptr, v uint32) {
	t.mustWrite()
	t.checkRange(p, 4)
	off := t.e.mainBase + int(p)
	t.e.dev.Store32(off, v)
	t.record(p, 4)
	t.stores++
	t.writeBytes += 4
	t.flush(off, 4)
}

// Store64 implements ptm.Tx.
func (t *Tx) Store64(p ptm.Ptr, v uint64) {
	t.mustWrite()
	t.checkRange(p, 8)
	off := t.e.mainBase + int(p)
	t.e.dev.Store64(off, v)
	t.record(p, 8)
	t.stores++
	t.writeBytes += 8
	t.flush(off, 8)
}

// StoreBytes implements ptm.Tx.
func (t *Tx) StoreBytes(p ptm.Ptr, src []byte) {
	t.mustWrite()
	t.checkRange(p, len(src))
	off := t.e.mainBase + int(p)
	t.e.dev.StoreBytes(off, src)
	t.record(p, uint64(len(src)))
	t.stores++
	t.writeBytes += uint64(len(src))
	t.flush(off, len(src))
}

// memset zeroes a fresh allocation through the same interposition path.
func (t *Tx) memset(p ptm.Ptr, n int) {
	off := t.e.mainBase + int(p)
	t.e.dev.Memset(off, 0, n)
	t.record(p, uint64(n))
	t.stores++
	t.writeBytes += uint64(n)
	t.flush(off, n)
}

// Alloc implements ptm.Tx: transactional allocation from the persistent
// heap. The returned memory is zeroed.
func (t *Tx) Alloc(n int) (ptm.Ptr, error) {
	t.mustWrite()
	p, err := t.e.heap.Alloc(n)
	if err != nil {
		if errors.Is(err, alloc.ErrOutOfMemory) {
			return 0, ptm.ErrOutOfMemory
		}
		return 0, err
	}
	t.e.bumpWatermark()
	if n > 0 {
		t.memset(ptm.Ptr(p), n)
	}
	return ptm.Ptr(p), nil
}

// Free implements ptm.Tx: transactional release back to the heap.
func (t *Tx) Free(p ptm.Ptr) error {
	t.mustWrite()
	if err := t.e.heap.Free(uint64(p)); err != nil {
		if errors.Is(err, alloc.ErrBadFree) {
			return ptm.ErrBadFree
		}
		return err
	}
	return nil
}

// Root implements ptm.Tx.
func (t *Tx) Root(i int) ptm.Ptr {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("core: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	return ptm.Ptr(t.e.dev.Load64(t.base + rootsOff + 8*i))
}

// SetRoot implements ptm.Tx.
func (t *Tx) SetRoot(i int, p ptm.Ptr) {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("core: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	t.Store64(ptm.Ptr(rootsOff+8*i), uint64(p))
}

// Handle carries the per-goroutine state (flat-combining slot, read
// indicator slot) of one logical thread. Acquire one per worker goroutine
// on hot paths; the engine-level Update/Read draw from an internal pool.
type Handle struct {
	e   *Engine
	tid int
	rtx Tx // reusable read transaction
}

var _ ptm.Handle = (*Handle)(nil)

// NewHandle registers a logical thread with the engine.
func (e *Engine) NewHandle() (ptm.Handle, error) {
	return e.newHandle()
}

func (e *Engine) newHandle() (*Handle, error) {
	tid, err := e.reg.Acquire()
	if err != nil {
		return nil, err
	}
	h := &Handle{e: e, tid: tid}
	h.rtx = Tx{e: e, readOnly: true, base: e.mainBase}
	return h, nil
}

// Release returns the handle's thread ID for reuse. The handle must not be
// used afterwards.
func (h *Handle) Release() { h.e.reg.Release(h.tid) }

// Update runs fn in a durable update transaction (see ptm.PTM).
func (h *Handle) Update(fn func(ptm.Tx) error) error {
	_, err := h.UpdateBatched(fn)
	return err
}

// UpdateBatched is Update but also reports the durability round (combiner
// batch sequence number, assigned in commit order from 1) that made fn's
// effects durable. Operations reporting the same round committed atomically
// in one crash-atomic batch: after a crash, recovery exposes either all or
// none of them. A failed (rolled-back) operation reports round 0; so does
// the DisableFlatCombining ablation, which has no batch commit path.
func (h *Handle) UpdateBatched(fn func(ptm.Tx) error) (uint64, error) {
	e := h.e
	// A media-fault trip during fn means it computed on corrupted loads; the
	// returned error rolls the transaction back through the combiner, so no
	// fault-tainted state commits. (The trip counter is device-global, so a
	// concurrent reader's trip can fail an innocent update — conservative,
	// never unsafe.)
	op := func(t *Tx) error {
		trips := e.dev.FaultsTripped()
		err := fn(t)
		if e.dev.FaultsTripped() != trips {
			// The fault takes precedence over fn's own error: corrupted loads
			// can make fn fail with a plausible-but-wrong error (e.g. a key
			// compare against rotted bytes reporting "not found").
			return e.dev.FaultError()
		}
		return err
	}
	var (
		seq uint64
		err error
	)
	if e.cfg.DisableFlatCombining {
		err = e.updateNoCombining(op)
	} else {
		seq, err = e.comb.ExecuteSeq(h.tid, op)
	}
	if err == nil {
		e.updates.Add(1)
	}
	return seq, err
}

// updateNoCombining is the ablation path: plain spin lock, no aggregation.
// Errors and panics from op roll the transaction back, like the combiner.
func (e *Engine) updateNoCombining(op func(*Tx) error) error {
	e.wlock.Lock()
	defer e.wlock.Unlock()
	t := e.hooks.Begin()
	committed := false
	defer func() {
		if !committed {
			e.hooks.Rollback(t)
		}
	}()
	if err := op(t); err != nil {
		return err // deferred rollback fires
	}
	e.hooks.Commit(t, 1)
	committed = true
	return nil
}

// Read runs fn in a read-only transaction (see ptm.PTM).
func (h *Handle) Read(fn func(ptm.Tx) error) error {
	e := h.e
	t := &h.rtx
	if e.cfg.Variant == RomLR {
		vi := e.lr.Arrive(h.tid)
		defer e.lr.Depart(h.tid, vi)
		if e.lr.Read() == leftright.Back {
			t.base = e.backBase // synthetic pointers: +regionSize on every access
		} else {
			t.base = e.mainBase
		}
	} else {
		e.rw.SharedLock(h.tid)
		defer e.rw.SharedUnlock(h.tid)
		t.base = e.mainBase
	}
	e.reads.Add(1)
	t.loads = 0
	trips := e.dev.FaultsTripped()
	err := fn(t)
	if e.dev.FaultsTripped() != trips {
		// fn consumed corrupted loads; surface the typed media fault rather
		// than let the caller trust the data — or trust fn's own error, which
		// corrupted loads may have fabricated.
		err = e.dev.FaultError()
	}
	if s := e.trace; s != nil {
		out := obs.OutcomeOK
		if err != nil {
			out = obs.OutcomeError
		}
		s.Emit(obs.TxEvent{
			Engine:  e.cfg.Variant.String(),
			Kind:    obs.KindRead,
			Outcome: out,
			Reads:   t.loads,
		})
	}
	return err
}

// Update implements ptm.PTM using a pooled handle.
func (e *Engine) Update(fn func(ptm.Tx) error) error {
	h, err := e.poolGet()
	if err != nil {
		return err
	}
	defer e.poolPut(h)
	return h.Update(fn)
}

// Read implements ptm.PTM using a pooled handle.
func (e *Engine) Read(fn func(ptm.Tx) error) error {
	h, err := e.poolGet()
	if err != nil {
		return err
	}
	defer e.poolPut(h)
	return h.Read(fn)
}

func (e *Engine) poolGet() (*Handle, error) {
	select {
	case h := <-e.handles:
		return h, nil
	default:
		return e.newHandle()
	}
}

func (e *Engine) poolPut(h *Handle) {
	select {
	case e.handles <- h:
	default:
		h.Release()
	}
}
