package hsync

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	var counter int
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d", counter, workers*iters)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestSpinLockUnlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unlock of unlocked lock did not panic")
		}
	}()
	var l SpinLock
	l.Unlock()
}

func TestReadIndicatorArriveDepart(t *testing.T) {
	var r ReadIndicator
	if !r.IsEmpty() {
		t.Fatal("fresh indicator not empty")
	}
	r.Arrive(3)
	if r.IsEmpty() {
		t.Fatal("indicator empty with one reader")
	}
	r.Arrive(7)
	r.Depart(3)
	if r.IsEmpty() {
		t.Fatal("indicator empty with reader 7 present")
	}
	r.Depart(7)
	if !r.IsEmpty() {
		t.Fatal("indicator not empty after all depart")
	}
}

func TestReadIndicatorReentrant(t *testing.T) {
	var r ReadIndicator
	r.Arrive(0)
	r.Arrive(0)
	r.Depart(0)
	if r.IsEmpty() {
		t.Fatal("nested arrival lost")
	}
	r.Depart(0)
	if !r.IsEmpty() {
		t.Fatal("indicator stuck after nested departs")
	}
}

func TestWaitEmpty(t *testing.T) {
	var r ReadIndicator
	r.Arrive(1)
	done := make(chan struct{})
	go func() {
		r.WaitEmpty()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("WaitEmpty returned with a reader present")
	default:
	}
	r.Depart(1)
	<-done // must terminate
}

func TestRegistryAcquireRelease(t *testing.T) {
	var reg Registry
	a, err := reg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("duplicate IDs: %d", a)
	}
	reg.Release(a)
	c, err := reg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("released ID not reused: got %d, want %d", c, a)
	}
}

func TestRegistryExhaustion(t *testing.T) {
	var reg Registry
	ids := map[int]bool{}
	for i := 0; i < MaxThreads; i++ {
		id, err := reg.Acquire()
		if err != nil {
			t.Fatalf("Acquire %d: %v", i, err)
		}
		if ids[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		ids[id] = true
	}
	if _, err := reg.Acquire(); err == nil {
		t.Error("Acquire beyond MaxThreads succeeded")
	}
	reg.Release(0)
	if _, err := reg.Acquire(); err != nil {
		t.Errorf("Acquire after release: %v", err)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var reg Registry
	var wg sync.WaitGroup
	var inUse [MaxThreads]atomic.Bool
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, err := reg.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if inUse[id].Swap(true) {
					t.Errorf("ID %d handed out twice", id)
					return
				}
				inUse[id].Store(false)
				reg.Release(id)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkReadIndicatorArriveDepart(b *testing.B) {
	var r ReadIndicator
	var reg Registry
	b.RunParallel(func(pb *testing.PB) {
		id, err := reg.Acquire()
		if err != nil {
			b.Error(err)
			return
		}
		defer reg.Release(id)
		for pb.Next() {
			r.Arrive(id)
			r.Depart(id)
		}
	})
}
