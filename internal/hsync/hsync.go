// Package hsync provides the low-level synchronization building blocks
// shared by the concurrency mechanisms of §5 of the Romulus paper: a test
// and-test-and-set spin lock, a distributed read indicator with per-thread
// cache-padded slots, and a registry that hands out small dense thread IDs
// (Go has no thread-local storage, so per-"thread" state is keyed by
// explicitly acquired IDs).
//
// Everything in this package lives in volatile memory. As the paper notes
// (§5.2), none of the lock state needs to be persistent: correct recovery
// depends only on the persistent state machine, not on who held which lock.
package hsync

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxThreads is the maximum number of simultaneously registered threads
// (goroutines holding a Handle). It bounds the size of flat-combining
// arrays and read indicators, mirroring the statically-assigned per-thread
// entries of the original implementation.
const MaxThreads = 256

// SpinLock is a test-and-test-and-set mutual exclusion lock with
// exponential backoff. The zero value is unlocked.
type SpinLock struct {
	held atomic.Bool
}

// TryLock attempts to acquire the lock without blocking.
func (l *SpinLock) TryLock() bool {
	return !l.held.Load() && l.held.CompareAndSwap(false, true)
}

// Lock acquires the lock, spinning with backoff.
func (l *SpinLock) Lock() {
	for spins := 0; ; spins++ {
		if l.TryLock() {
			return
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the lock. Calling Unlock on an unlocked SpinLock is a
// programming error and panics.
func (l *SpinLock) Unlock() {
	if !l.held.CompareAndSwap(true, false) {
		panic("hsync: unlock of unlocked SpinLock")
	}
}

// padding guarantees each slot of a ReadIndicator extends over two cache
// lines (128 bytes), avoiding false sharing between reader threads — the
// layout the paper uses for its C-RW-WP read indicator (§5.2).
type paddedCounter struct {
	n atomic.Int64
	_ [120]byte
}

// ReadIndicator is a distributed counter recording the presence of readers.
// Arrive and Depart touch only the caller's own slot; IsEmpty scans all
// slots. This gives readers an uncontended single store each way at the
// price of a writer-side scan, the right trade for read-mostly workloads.
type ReadIndicator struct {
	slots [MaxThreads]paddedCounter
}

// Arrive marks the thread with the given ID as reading.
func (r *ReadIndicator) Arrive(tid int) { r.slots[tid].n.Add(1) }

// Depart clears the thread's reading mark.
func (r *ReadIndicator) Depart(tid int) { r.slots[tid].n.Add(-1) }

// IsEmpty reports whether no reader is present. It is not a snapshot:
// concurrent arrivals may race with the scan; callers combine it with a
// writer flag that blocks new arrivals (C-RW-WP) or a version toggle (LR).
func (r *ReadIndicator) IsEmpty() bool {
	for i := range r.slots {
		if r.slots[i].n.Load() != 0 {
			return false
		}
	}
	return true
}

// WaitEmpty spins until the indicator is empty.
func (r *ReadIndicator) WaitEmpty() {
	for spins := 0; !r.IsEmpty(); spins++ {
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

// Registry hands out dense thread IDs in [0, MaxThreads). IDs identify
// flat-combining slots and read-indicator slots.
type Registry struct {
	mu   sync.Mutex
	free []int
	next int
}

// Acquire reserves a thread ID. It returns an error when MaxThreads IDs are
// simultaneously live, which indicates handles are being leaked.
func (r *Registry) Acquire() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		id := r.free[n-1]
		r.free = r.free[:n-1]
		return id, nil
	}
	if r.next >= MaxThreads {
		return 0, fmt.Errorf("hsync: all %d thread IDs in use (leaked handles?)", MaxThreads)
	}
	id := r.next
	r.next++
	return id, nil
}

// Release returns a thread ID to the registry for reuse.
func (r *Registry) Release(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.free = append(r.free, id)
}
