package redolog

import (
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
)

// put64 overwrites the 8-byte little-endian word at off in img.
func put64(img []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		img[off+i] = byte(v >> (8 * i))
	}
}

func get64(img []byte, off int) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(img[off+i])
	}
	return v
}

// persistedImage builds an engine with one committed value and returns its
// fully-persisted media image plus the config to reopen it.
func persistedImage(t *testing.T) ([]byte, Config) {
	t.Helper()
	cfg := Config{SegmentSize: 1 << 15, Segments: 4}
	e, err := New(1<<17, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(tx ptm.Tx) error {
		p, err := tx.Alloc(64)
		if err != nil {
			return err
		}
		tx.Store64(p, 42)
		tx.SetRoot(0, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dev.PersistAll()
	return e.dev.Persisted(), cfg
}

// A torn header (magic intact, static words damaged) must surface as the
// typed ErrCorruptHeader rather than a misleading config mismatch.
func TestOpenTornHeader(t *testing.T) {
	img, cfg := persistedImage(t)
	for _, off := range []int{offVersion, offRegionSize, offSegSize, offNumSegs, offHeadSum} {
		bad := append([]byte(nil), img...)
		put64(bad, off, get64(bad, off)^0xFF00FF00FF00FF00)
		_, err := Open(pmem.FromImage(bad, pmem.ModelDRAM), cfg)
		if !errors.Is(err, ErrCorruptHeader) {
			t.Errorf("corrupting word at %d: err = %v, want ErrCorruptHeader", off, err)
		}
		if !errors.Is(err, ptm.ErrCorruptHeader) {
			t.Errorf("corrupting word at %d: err %v does not unwrap to ptm.ErrCorruptHeader", off, err)
		}
	}
}

// A committed segment whose count or entry addresses are impossible must
// abort recovery with ErrCorruptLog instead of replaying garbage into main.
func TestOpenCorruptLog(t *testing.T) {
	img, cfg := persistedImage(t)
	regionSize := int(get64(img, offRegionSize))
	seg0 := headSize + regionSize // segment 0 base

	cases := []struct {
		name   string
		mutate func(img []byte)
	}{
		{"count exceeds segment capacity", func(img []byte) {
			put64(img, seg0+segCommitted, segDone)
			put64(img, seg0+segCount, uint64(cfg.SegmentSize)) // >> (segSize-16)/64
		}},
		{"entry addresses outside region", func(img []byte) {
			put64(img, seg0+segCommitted, segDone)
			put64(img, seg0+segCount, 1)
			put64(img, seg0+segEntries, uint64(regionSize)) // addr at region end
			put64(img, seg0+segEntries+8, 7)                // val
		}},
		{"rotted committed flag", func(img []byte) {
			put64(img, seg0+segCommitted, segDone^0x10) // neither 0 nor segDone
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := append([]byte(nil), img...)
			tc.mutate(bad)
			_, err := Open(pmem.FromImage(bad, pmem.ModelDRAM), cfg)
			if !errors.Is(err, ErrCorruptLog) {
				t.Fatalf("err = %v, want ErrCorruptLog", err)
			}
		})
	}
}

// RecoveryPending distinguishes images with committed-but-unapplied redo
// segments from clean ones.
func TestRecoveryPending(t *testing.T) {
	img, cfg := persistedImage(t)
	if RecoveryPending(img, cfg) {
		t.Error("clean image reported as pending recovery")
	}
	regionSize := int(get64(img, offRegionSize))
	pend := append([]byte(nil), img...)
	put64(pend, headSize+regionSize+2*cfg.SegmentSize+segCommitted, 1)
	if !RecoveryPending(pend, cfg) {
		t.Error("image with committed segment not reported as pending")
	}
	if RecoveryPending(make([]byte, headSize), cfg) {
		t.Error("unformatted image reported as pending")
	}
}
