package redolog

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// abortSignal unwinds a conflicted transaction attempt; the retry loops in
// Update/Read recover it. User code must not swallow panics wholesale
// inside transactions (the same rule TL2-style STMs impose).
type abortSignal struct{}

// Tx implements ptm.Tx with lazy versioning: stores buffer in a volatile
// write set; loads check the write set first (the load interposition the
// paper charges Mnemosyne for) and validate stripe versions against the
// transaction's read version. Nothing touches the persistent region until
// commit, so user-level "rollback" is free.
type Tx struct {
	e        *Engine
	readOnly bool
	rv       uint64
	writes   map[uint64]uint64 // aligned word addr -> value
	order    []uint64          // write insertion order (dedup at commit)
	rset     []readEntry

	// Trace accounting for the current attempt, owned by the handle's
	// goroutine. commitPwbs/commitFences/logBytes are derived in commit from
	// the protocol structure (the device counters are global and therefore
	// unattributable under concurrent commits).
	loads        uint64
	commitPwbs   uint64
	commitFences uint64
	logBytes     uint64
}

type readEntry struct {
	stripe uint64 // word index
	ver    uint64
}

var _ ptm.Tx = (*Tx)(nil)

func (t *Tx) reset(readOnly bool) {
	t.readOnly = readOnly
	t.rv = t.e.clock.Load()
	// Oversized maps are replaced rather than cleared: Go map buckets never
	// shrink, and iterating an emptied huge map costs O(capacity) per
	// transaction forever after.
	if len(t.writes) > 4096 {
		t.writes = make(map[uint64]uint64)
	} else {
		for k := range t.writes {
			delete(t.writes, k)
		}
	}
	t.order = t.order[:0]
	t.rset = t.rset[:0]
	t.loads, t.commitPwbs, t.commitFences, t.logBytes = 0, 0, 0, 0
}

func (t *Tx) abort() { panic(abortSignal{}) }

func (t *Tx) mustWrite() {
	if t.readOnly {
		panic("redolog: mutating operation inside a read-only transaction")
	}
}

func (t *Tx) checkRange(p ptm.Ptr, n int) {
	if int(p)+n > t.e.regionSize {
		panic(fmt.Sprintf("redolog: access [%d,%d) outside region of %d bytes", p, int(p)+n, t.e.regionSize))
	}
}

// loadWord reads the aligned word at w with TL2 validation: the guarding
// stripe must be unlocked and no newer than the transaction's read version,
// before and after the data read.
func (t *Tx) loadWord(w uint64) uint64 {
	t.loads++
	if !t.readOnly {
		if v, ok := t.writes[w]; ok {
			return v
		}
	}
	s := t.e.stripe(w)
	v1 := s.Load()
	if isLocked(v1) || version(v1) > t.rv {
		t.abort()
	}
	val := t.e.dev.Load64(t.e.mainBase + int(w))
	if s.Load() != v1 {
		t.abort()
	}
	if !t.readOnly {
		t.rset = append(t.rset, readEntry{w >> 3, v1})
	}
	return val
}

// storeWord buffers a store of the aligned word at w.
func (t *Tx) storeWord(w uint64, v uint64) {
	if _, ok := t.writes[w]; !ok {
		t.order = append(t.order, w)
	}
	t.writes[w] = v
}

// Load8 implements ptm.Tx.
func (t *Tx) Load8(p ptm.Ptr) byte {
	t.checkRange(p, 1)
	w := uint64(p) &^ 7
	return byte(t.loadWord(w) >> (8 * (uint64(p) & 7)))
}

// Load16 implements ptm.Tx.
func (t *Tx) Load16(p ptm.Ptr) uint16 {
	t.checkRange(p, 2)
	return uint16(t.loadSpan(uint64(p), 2))
}

// Load32 implements ptm.Tx.
func (t *Tx) Load32(p ptm.Ptr) uint32 {
	t.checkRange(p, 4)
	return uint32(t.loadSpan(uint64(p), 4))
}

// Load64 implements ptm.Tx.
func (t *Tx) Load64(p ptm.Ptr) uint64 {
	t.checkRange(p, 8)
	return t.loadSpan(uint64(p), 8)
}

// loadSpan reads n (<= 8) bytes at p, crossing a word boundary if needed.
func (t *Tx) loadSpan(p uint64, n uint64) uint64 {
	w := p &^ 7
	shift := 8 * (p & 7)
	val := t.loadWord(w) >> shift
	if got := 8 - (p & 7); got < n {
		hi := t.loadWord(w + 8)
		val |= hi << (8 * got)
	}
	if n < 8 {
		val &= (1 << (8 * n)) - 1
	}
	return val
}

// storeSpan writes the low n bytes of v at p via read-modify-write of the
// containing word(s).
func (t *Tx) storeSpan(p uint64, v uint64, n uint64) {
	w := p &^ 7
	shift := 8 * (p & 7)
	if n == 8 && shift == 0 {
		t.storeWord(w, v)
		return
	}
	mask := ^uint64(0)
	if n < 8 {
		mask = (1 << (8 * n)) - 1
	}
	cur := t.loadWord(w)
	lowBits := 64 - shift
	t.storeWord(w, cur&^(mask<<shift)|(v&mask)<<shift)
	if 8*n > lowBits {
		cur2 := t.loadWord(w + 8)
		hiMask := mask >> lowBits
		t.storeWord(w+8, cur2&^hiMask|(v>>lowBits)&hiMask)
	}
}

// Store8 implements ptm.Tx.
func (t *Tx) Store8(p ptm.Ptr, v byte) {
	t.mustWrite()
	t.checkRange(p, 1)
	t.storeSpan(uint64(p), uint64(v), 1)
}

// Store16 implements ptm.Tx.
func (t *Tx) Store16(p ptm.Ptr, v uint16) {
	t.mustWrite()
	t.checkRange(p, 2)
	t.storeSpan(uint64(p), uint64(v), 2)
}

// Store32 implements ptm.Tx.
func (t *Tx) Store32(p ptm.Ptr, v uint32) {
	t.mustWrite()
	t.checkRange(p, 4)
	t.storeSpan(uint64(p), uint64(v), 4)
}

// Store64 implements ptm.Tx.
func (t *Tx) Store64(p ptm.Ptr, v uint64) {
	t.mustWrite()
	t.checkRange(p, 8)
	t.storeSpan(uint64(p), v, 8)
}

// LoadBytes implements ptm.Tx.
func (t *Tx) LoadBytes(p ptm.Ptr, dst []byte) {
	t.checkRange(p, len(dst))
	for i := 0; i < len(dst); {
		n := 8 - (int(p)+i)&7
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		v := t.loadSpan(uint64(p)+uint64(i), uint64(n))
		for b := 0; b < n; b++ {
			dst[i+b] = byte(v >> (8 * b))
		}
		i += n
	}
}

// StoreBytes implements ptm.Tx.
func (t *Tx) StoreBytes(p ptm.Ptr, src []byte) {
	t.mustWrite()
	t.checkRange(p, len(src))
	for i := 0; i < len(src); {
		n := 8 - (int(p)+i)&7
		if rem := len(src) - i; n > rem {
			n = rem
		}
		var v uint64
		for b := 0; b < n; b++ {
			v |= uint64(src[i+b]) << (8 * b)
		}
		t.storeSpan(uint64(p)+uint64(i), v, uint64(n))
		i += n
	}
}

// Alloc implements ptm.Tx. Allocator metadata accesses flow through the
// transaction, so allocation conflicts between concurrent transactions are
// detected like any other conflict.
func (t *Tx) Alloc(n int) (ptm.Ptr, error) {
	t.mustWrite()
	h, err := alloc.Open(txMem{t}, heapBase)
	if err != nil {
		return 0, err
	}
	p, err := h.Alloc(n)
	if err != nil {
		if errors.Is(err, alloc.ErrOutOfMemory) {
			return 0, ptm.ErrOutOfMemory
		}
		return 0, err
	}
	for i := 0; i < n; i += 8 {
		t.storeWord(p+uint64(i), 0) // p is 16-aligned, so p+i stays aligned
	}
	return ptm.Ptr(p), nil
}

// Free implements ptm.Tx.
func (t *Tx) Free(p ptm.Ptr) error {
	t.mustWrite()
	h, err := alloc.Open(txMem{t}, heapBase)
	if err != nil {
		return err
	}
	if err := h.Free(uint64(p)); err != nil {
		if errors.Is(err, alloc.ErrBadFree) {
			return ptm.ErrBadFree
		}
		return err
	}
	return nil
}

// Root implements ptm.Tx.
func (t *Tx) Root(i int) ptm.Ptr {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("redolog: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	return ptm.Ptr(t.loadWord(uint64(rootsOff + 8*i)))
}

// SetRoot implements ptm.Tx.
func (t *Tx) SetRoot(i int, p ptm.Ptr) {
	if i < 0 || i >= ptm.NumRoots {
		panic(fmt.Sprintf("redolog: root index %d out of [0,%d)", i, ptm.NumRoots))
	}
	t.mustWrite()
	t.storeWord(uint64(rootsOff+8*i), uint64(p))
}

// txMem routes allocator metadata accesses through the transaction.
type txMem struct{ t *Tx }

func (m txMem) Load64(off uint64) uint64     { return m.t.loadWord(off &^ 7) }
func (m txMem) Store64(off uint64, v uint64) { m.t.storeWord(off&^7, v) }

// commit runs the TL2 commit protocol with persistent redo logging.
// Returns ErrTxTooLarge without committing if the write set exceeds the
// log segment; aborts (panics abortSignal) on conflict.
func (t *Tx) commit(seg int) error {
	e := t.e
	if len(t.writes) == 0 {
		return nil // read-only or no-op update: loads were validated inline
	}
	if segEntries+len(t.writes)*entrySize > e.segSize {
		return ErrTxTooLarge
	}
	// Deduplicate and sort the write set for deadlock-free locking.
	words := t.order
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })

	// Phase 1: lock every write stripe.
	locked := 0
	for _, w := range words {
		s := e.stripe(w)
		v := s.Load()
		if isLocked(v) || version(v) > t.rv || !s.CompareAndSwap(v, v|lockedBit) {
			for _, u := range words[:locked] {
				su := e.stripe(u)
				su.Store(su.Load() &^ lockedBit)
			}
			t.abort()
		}
		locked++
	}
	// Phase 2: take a commit timestamp and validate the read set. Any
	// version above rv means a concurrent commit touched the word after we
	// read it (commit timestamps always exceed rv); a stripe locked by
	// anyone but us is a concurrent committer mid-flight.
	wv := e.clock.Add(1)
	for _, r := range t.rset {
		v := e.stripes[r.stripe].Load()
		if isLocked(v) && !t.ownsStripe(r.stripe, words) {
			t.releaseLocks(words)
			t.abort()
		}
		if version(v) > t.rv {
			t.releaseLocks(words)
			t.abort()
		}
	}
	// No abort paths remain past this point, so audit markers opened here
	// are always closed. Overlapping commits dirty disjoint lines the
	// auditor cannot attribute to one claim, so markers are emitted only
	// when this commit has the device to itself.
	aud := e.aud
	audited := false
	if aud != nil {
		if e.activeCommits.Add(1) == 1 {
			audited = true
			aud.TxBegin(e.Name(), "update")
		}
		defer e.activeCommits.Add(-1)
	}
	// Phase 3: persist the redo log (fences 1 and 2).
	d := e.dev
	base := e.segBase(seg)
	d.Store64(base+segCount, uint64(len(words)))
	for i, w := range words {
		o := base + segEntries + i*entrySize
		d.Store64(o, w)
		d.Store64(o+8, t.writes[w])
		// The remaining 48 bytes model Mnemosyne's per-word log overhead
		// (Table 1: 8 words per store); the cache lines are written back
		// regardless, so leaving them zero costs the same persistence.
	}
	d.PwbRange(base, segEntries+len(words)*entrySize)
	d.Pfence()
	d.Store64(base+segCommitted, segDone)
	d.Pwb(base + segCommitted)
	d.Pfence()
	// Phase 4: write back in place (fences 3 and 4).
	for _, w := range words {
		d.Store64(e.mainBase+int(w), t.writes[w])
		d.Pwb(e.mainBase + int(w))
	}
	d.Pfence()
	d.Store64(base+segCommitted, 0)
	d.Pwb(base + segCommitted)
	d.Psync()
	if audited && e.activeCommits.Load() == 1 {
		aud.DurablePoint("commit")
	}
	// Phase 5: release stripes at the new version.
	for _, w := range words {
		e.stripe(w).Store(wv << 1)
	}
	// Trace accounting, mirroring the persistence ops above: the log
	// PwbRange costs one pwb per cache line, the commit flag toggles one
	// each, phase 4 one per word; fences 1-4 as numbered.
	logSpan := segEntries + len(words)*entrySize
	t.commitPwbs = uint64((base+logSpan-1)/pmem.LineSize-base/pmem.LineSize+1) +
		1 + uint64(len(words)) + 1
	t.commitFences = 4
	t.logBytes = uint64(len(words) * entrySize)
	if audited {
		aud.TxEnd()
	}
	return nil
}

func (t *Tx) ownsStripe(stripe uint64, words []uint64) bool {
	w := stripe << 3
	i := sort.Search(len(words), func(i int) bool { return words[i] >= w })
	return i < len(words) && words[i] == w
}

func (t *Tx) releaseLocks(words []uint64) {
	e := t.e
	for _, w := range words {
		s := e.stripe(w)
		v := s.Load()
		if isLocked(v) {
			s.Store(v &^ lockedBit)
		}
	}
}
