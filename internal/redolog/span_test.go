package redolog

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ptm"
)

// Property: arbitrary unaligned, word-crossing stores of every width read
// back exactly like a plain byte array — exercising the write-set
// read-modify-write machinery of the load/store interposition.
func TestQuickSpanStoreLoadMatchesByteArray(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newEngine(t)
		var p ptm.Ptr
		if err := e.Update(func(tx ptm.Tx) error {
			var err error
			p, err = tx.Alloc(256)
			return err
		}); err != nil {
			return false
		}
		ref := make([]byte, 256)
		ok := true
		err := e.Update(func(tx ptm.Tx) error {
			for op := 0; op < 60; op++ {
				off := rng.Intn(240)
				switch rng.Intn(5) {
				case 0:
					v := byte(rng.Uint32())
					tx.Store8(p+ptm.Ptr(off), v)
					ref[off] = v
				case 1:
					v := uint16(rng.Uint32())
					tx.Store16(p+ptm.Ptr(off), v)
					ref[off] = byte(v)
					ref[off+1] = byte(v >> 8)
				case 2:
					v := rng.Uint32()
					tx.Store32(p+ptm.Ptr(off), v)
					for b := 0; b < 4; b++ {
						ref[off+b] = byte(v >> (8 * b))
					}
				case 3:
					v := rng.Uint64()
					tx.Store64(p+ptm.Ptr(off), v)
					for b := 0; b < 8; b++ {
						ref[off+b] = byte(v >> (8 * b))
					}
				case 4:
					n := 1 + rng.Intn(16)
					src := make([]byte, n)
					rng.Read(src)
					tx.StoreBytes(p+ptm.Ptr(off), src)
					copy(ref[off:], src)
				}
				// Read back through every accessor width.
				roff := rng.Intn(240)
				if tx.Load8(p+ptm.Ptr(roff)) != ref[roff] {
					ok = false
				}
				got16 := tx.Load16(p + ptm.Ptr(roff))
				want16 := uint16(ref[roff]) | uint16(ref[roff+1])<<8
				if got16 != want16 {
					ok = false
				}
				got64 := tx.Load64(p + ptm.Ptr(roff))
				var want64 uint64
				for b := 0; b < 8; b++ {
					want64 |= uint64(ref[roff+b]) << (8 * b)
				}
				if got64 != want64 {
					ok = false
				}
			}
			return nil
		})
		if err != nil || !ok {
			return false
		}
		// After commit, the durable image must equal the reference.
		var final []byte
		e.Read(func(tx ptm.Tx) error {
			final = make([]byte, 256)
			tx.LoadBytes(p, final)
			return nil
		})
		return bytes.Equal(final, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
