package redolog

import (
	"repro/internal/obs"
	"repro/internal/ptm"
)

// Handle is a per-goroutine transaction context holding a reusable
// transaction object and this thread's log-segment assignment.
type Handle struct {
	e   *Engine
	tid int
	tx  Tx
}

var _ ptm.Handle = (*Handle)(nil)

// NewHandle implements ptm.HandlePTM.
func (e *Engine) NewHandle() (ptm.Handle, error) {
	return e.newHandle()
}

func (e *Engine) newHandle() (*Handle, error) {
	tid, err := e.reg.Acquire()
	if err != nil {
		return nil, err
	}
	h := &Handle{e: e, tid: tid}
	h.tx = Tx{e: e, writes: make(map[uint64]uint64)}
	return h, nil
}

// Release implements ptm.Handle.
func (h *Handle) Release() { h.e.reg.Release(h.tid) }

// Update runs fn as an update transaction, retrying on conflict aborts
// until it commits. fn may run multiple times and must confine its side
// effects to the transaction and captured variables, as with any STM.
func (h *Handle) Update(fn func(ptm.Tx) error) error {
	e := h.e
	seg := h.tid % e.numSegs
	for attempt := 0; ; attempt++ {
		err, aborted := h.tryUpdate(fn, seg)
		if !aborted {
			if err == nil {
				e.updates.Add(1)
			}
			if s := e.trace; s != nil {
				t := &h.tx
				out := obs.OutcomeCommit
				if err != nil {
					// Lazy versioning: a failed update never touched the
					// persistent region, so the rollback is free.
					out = obs.OutcomeRollback
				}
				s.Emit(obs.TxEvent{
					Engine:      e.Name(),
					Kind:        obs.KindUpdate,
					Outcome:     out,
					Reads:       t.loads,
					Writes:      uint64(len(t.writes)),
					WriteBytes:  8 * uint64(len(t.writes)),
					CopiedBytes: t.logBytes,
					Pwbs:        t.commitPwbs,
					Fences:      t.commitFences,
					Retries:     uint64(attempt),
				})
			}
			return err
		}
		e.aborts.Add(1)
		backoff(attempt)
	}
}

func (h *Handle) tryUpdate(fn func(ptm.Tx) error, seg int) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	t := &h.tx
	t.reset(false)
	trips := h.e.dev.FaultsTripped()
	err = fn(t)
	if h.e.dev.FaultsTripped() != trips {
		// fn computed its write set from corrupted loads; refuse to commit
		// it (the fault outranks fn's own error, which corrupted loads may
		// have fabricated). Lazy versioning: nothing touched the region.
		return h.e.dev.FaultError(), false
	}
	if err != nil {
		return err, false // lazy versioning: nothing to undo
	}
	// Serialize committers sharing this log segment.
	h.e.segMu[seg].Lock()
	defer h.e.segMu[seg].Unlock()
	return t.commit(seg), false
}

// Read runs fn as a read-only transaction, retrying on validation aborts.
// Loads validate inline against the snapshot version, so a completed fn saw
// a consistent snapshot.
func (h *Handle) Read(fn func(ptm.Tx) error) error {
	e := h.e
	for attempt := 0; ; attempt++ {
		err, aborted := h.tryRead(fn)
		if !aborted {
			e.readTxs.Add(1)
			if s := e.trace; s != nil {
				out := obs.OutcomeOK
				if err != nil {
					out = obs.OutcomeError
				}
				s.Emit(obs.TxEvent{
					Engine:  e.Name(),
					Kind:    obs.KindRead,
					Outcome: out,
					Reads:   h.tx.loads,
					Retries: uint64(attempt),
				})
			}
			return err
		}
		e.aborts.Add(1)
		backoff(attempt)
	}
}

func (h *Handle) tryRead(fn func(ptm.Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	t := &h.tx
	t.reset(true)
	trips := h.e.dev.FaultsTripped()
	err = fn(t)
	if h.e.dev.FaultsTripped() != trips {
		err = h.e.dev.FaultError()
	}
	return err, false
}

// Update implements ptm.PTM using a pooled handle.
func (e *Engine) Update(fn func(ptm.Tx) error) error {
	h, err := e.poolGet()
	if err != nil {
		return err
	}
	defer e.poolPut(h)
	return h.Update(fn)
}

// Read implements ptm.PTM using a pooled handle.
func (e *Engine) Read(fn func(ptm.Tx) error) error {
	h, err := e.poolGet()
	if err != nil {
		return err
	}
	defer e.poolPut(h)
	return h.Read(fn)
}

func (e *Engine) poolGet() (*Handle, error) {
	select {
	case h := <-e.handles:
		return h, nil
	default:
		return e.newHandle()
	}
}

func (e *Engine) poolPut(h *Handle) {
	select {
	case e.handles <- h:
	default:
		h.Release()
	}
}
