package redolog

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/ptm"
	"repro/internal/ptmtest"
)

func TestConformance(t *testing.T) {
	cfg := Config{SegmentSize: 64 << 10, Segments: 4}
	ptmtest.Run(t, ptmtest.Factory{
		Name: "mne",
		New: func(tb testing.TB) ptmtest.Engine {
			e, err := New(1<<20, cfg)
			if err != nil {
				tb.Fatal(err)
			}
			return e
		},
		Reopen: func(tb testing.TB, img []byte) (ptmtest.Engine, error) {
			return Open(pmem.FromImage(img, pmem.ModelDRAM), cfg)
		},
	})
}

func newEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(1<<20, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestName(t *testing.T) {
	e := newEngine(t)
	if e.Name() != "mne" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestTxTooLarge(t *testing.T) {
	e, err := New(1<<19, Config{SegmentSize: 4096, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	var p ptm.Ptr
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(128)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// 4096-byte segment holds (4096-16)/64 = 63 entries; write more words.
	err = e.Update(func(tx ptm.Tx) error {
		q, err := tx.Alloc(1024)
		if err != nil {
			return err
		}
		for i := 0; i < 1024; i += 8 {
			tx.Store64(q+ptm.Ptr(i), uint64(i))
		}
		return nil
	})
	if !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("err = %v, want ErrTxTooLarge", err)
	}
	// Nothing must have been applied (lazy versioning).
	e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(p); got != 0 {
			t.Errorf("stray write after rejected tx: %d", got)
		}
		return nil
	})
	// Engine still usable.
	if err := e.Update(func(tx ptm.Tx) error {
		tx.Store64(p, 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// Write skew must be impossible: two transactions each read both flags and
// set one; serializability forbids both setting.
func TestNoWriteSkew(t *testing.T) {
	e := newEngine(t)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(16)
		return err
	})
	var wg sync.WaitGroup
	for it := 0; it < 200; it++ {
		e.Update(func(tx ptm.Tx) error {
			tx.Store64(p, 0)
			tx.Store64(p+8, 0)
			return nil
		})
		wg.Add(2)
		for w := 0; w < 2; w++ {
			go func(me int) {
				defer wg.Done()
				e.Update(func(tx ptm.Tx) error {
					a := tx.Load64(p)
					b := tx.Load64(p + 8)
					if a == 0 && b == 0 {
						tx.Store64(p+ptm.Ptr(me*8), 1)
					}
					return nil
				})
			}(w)
		}
		wg.Wait()
		e.Read(func(tx ptm.Tx) error {
			a, b := tx.Load64(p), tx.Load64(p+8)
			if a == 1 && b == 1 {
				t.Fatalf("write skew: both flags set (iteration %d)", it)
			}
			return nil
		})
	}
}

// Concurrent updates to DISJOINT words must all commit (fine-grained
// conflict detection, unlike the global-lock engines).
func TestDisjointUpdatesAllCommit(t *testing.T) {
	e := newEngine(t)
	const workers, iters = 8, 100
	var arr ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		arr, err = tx.Alloc(workers * 64) // one cache line each; separate stripes
		return err
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			h, err := e.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			slot := arr + ptm.Ptr(me*64)
			for i := 0; i < iters; i++ {
				if err := h.Update(func(tx ptm.Tx) error {
					tx.Store64(slot, tx.Load64(slot)+1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.Read(func(tx ptm.Tx) error {
		for w := 0; w < workers; w++ {
			if got := tx.Load64(arr + ptm.Ptr(w*64)); got != iters {
				t.Errorf("slot %d = %d, want %d", w, got, iters)
			}
		}
		return nil
	})
}

// A shared counter incremented by every update transaction causes conflicts
// and aborts — the phenomenon behind Mnemosyne's resizable-hash-map
// collapse in Figure 4 (§6.2).
func TestSharedCounterCausesAborts(t *testing.T) {
	e := newEngine(t)
	var ctr ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		ctr, err = tx.Alloc(8)
		return err
	})
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := e.NewHandle()
			defer h.Release()
			for i := 0; i < iters; i++ {
				h.Update(func(tx ptm.Tx) error {
					tx.Store64(ctr, tx.Load64(ctr)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	e.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(ctr); got != workers*iters {
			t.Errorf("counter = %d, want %d", got, workers*iters)
		}
		return nil
	})
	t.Logf("aborts under shared-counter contention: %d", e.Stats().Aborts)
}

// Mnemosyne pays at least 4 fences per update transaction and only 8 log
// words per stored word (Table 1).
func TestCommitFencesAndLogVolume(t *testing.T) {
	e := newEngine(t)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(256)
		return err
	})
	e.Device().ResetStats()
	e.Update(func(tx ptm.Tx) error {
		for i := 0; i < 4; i++ {
			tx.Store64(p+ptm.Ptr(i*8), uint64(i))
		}
		return nil
	})
	s := e.Device().Stats()
	if fences := s.Pfences + s.Psyncs; fences < 4 {
		t.Errorf("fences = %d, want >= 4", fences)
	}
	// Write amplification: 4 words stored in place + 4*8 words of log
	// footprint persisted (whole lines).
	if s.BytesPersisted < 4*entrySize {
		t.Errorf("BytesPersisted = %d, expected at least the log entries (%d)", s.BytesPersisted, 4*entrySize)
	}
}

// Read-only transactions never observe a half-committed write set.
func TestReadSnapshotConsistency(t *testing.T) {
	e := newEngine(t)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(16)
		return err
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, _ := e.NewHandle()
		defer h.Release()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Update(func(tx ptm.Tx) error {
				tx.Store64(p, i)
				tx.Store64(p+8, i)
				return nil
			})
		}
	}()
	h, _ := e.NewHandle()
	defer h.Release()
	for i := 0; i < 2000; i++ {
		h.Read(func(tx ptm.Tx) error {
			a, b := tx.Load64(p), tx.Load64(p+8)
			if a != b {
				t.Errorf("torn snapshot: %d != %d", a, b)
			}
			return nil
		})
	}
	close(stop)
	wg.Wait()
}

// Recovery must replay a committed-but-unapplied redo log.
func TestRecoveryReplaysCommittedLog(t *testing.T) {
	e := newEngine(t)
	var p ptm.Ptr
	e.Update(func(tx ptm.Tx) error {
		var err error
		p, err = tx.Alloc(64)
		tx.SetRoot(0, p)
		if err == nil {
			tx.Store64(p, 1)
		}
		return err
	})
	// Capture an image at the moment the commit marker is durable but
	// before in-place write-back is fenced: KeepQueued keeps everything
	// that was flushed, so take the image right at the committed=1 fence.
	dev := e.Device()
	var img []byte
	dev.SetHooks(&pmem.Hooks{Fence: func() {
		base := e.segBase(0)
		if img == nil && dev.Load64(base+segCommitted) == segDone {
			img = dev.CrashImage(pmem.DropAll)
		}
	}})
	e.Update(func(tx ptm.Tx) error {
		tx.Store64(p, 2)
		return nil
	})
	dev.SetHooks(nil)
	if img == nil {
		t.Fatal("never observed a durable committed marker")
	}
	re, err := Open(pmem.FromImage(img, pmem.ModelDRAM), Config{})
	if err != nil {
		t.Fatal(err)
	}
	re.Read(func(tx ptm.Tx) error {
		if got := tx.Load64(tx.Root(0)); got != 2 {
			t.Errorf("committed tx lost: %d, want 2 (log replay)", got)
		}
		return nil
	})
}
