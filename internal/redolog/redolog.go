// Package redolog implements a Mnemosyne-style persistent transactional
// memory: a word-granularity software transactional memory (TL2-flavoured,
// standing in for TinySTM) combined with a persistent redo log, as
// described for Mnemosyne in §2 of the Romulus paper.
//
// Characteristics reproduced from the paper's comparison (Table 1, §6):
//
//   - loads AND stores are interposed: every load must first check the
//     transaction's write set, which grows costlier with transaction size;
//   - each stored word consumes 8 words of persistent log (entry plus
//     metadata/padding), giving 300–600% write amplification;
//   - a transaction needs 4 persistence fences at minimum, and more under
//     contention because aborted commit attempts repeat log work;
//   - transactions on disjoint data run concurrently (fine-grained
//     stripes), but conflicts — such as every update hitting a shared
//     element counter in a resizable hash map — cause aborts and retries,
//     the scalability collapse of Figure 4/5.
//
// Like the real Mnemosyne (paper footnote 2), very large transactions are
// rejected rather than supported: a write set that outgrows its log
// segment fails with ErrTxTooLarge.
package redolog

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/hsync"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/ptm"
)

// Device layout:
//
//	[ head : headSize ][ main : regionSize ][ seg 0 ][ seg 1 ] ...
//
// Each log segment belongs to one committing transaction at a time:
//
//	+0  committed flag   +8  word count   +16 entries (64 B each)
const (
	offMagic      = 0
	offVersion    = 8
	offRegionSize = 16
	offSegSize    = 24
	offNumSegs    = 32
	offHeadSum    = 40 // checksum of the static header words
	headSize      = 256

	segCommitted = 0
	segCount     = 8
	segEntries   = 16
	entrySize    = 64 // 8 words per stored word, per the paper's Table 1
)

const (
	magicValue    = 0x4D4E454D4F53594E // "MNEMOSYN"
	layoutVersion = 1

	// segDone marks a segment whose committed flag has a distinguished
	// constant rather than a bare 1: recovery replays exactly the segments
	// flagged committed, so the flag word must be self-evidencing. 0 is
	// empty, segDone is committed, and anything else is rot — replaying a
	// segment on the strength of a rotted flag would scribble stale log
	// words over committed data, so recovery refuses instead. The flag is
	// written with atomic 8-byte stores and never torn.
	segDone = 0x5245444F4C4F4731 // "REDOLOG1"
)

// Main-region layout matches the other engines so data structures are
// engine-agnostic.
const (
	rootsOff = 64
	heapBase = rootsOff + ptm.NumRoots*8
)

// ErrTxTooLarge is returned when a transaction's write set exceeds a log
// segment.
var ErrTxTooLarge = errors.New("redolog: transaction write set exceeds log segment")

// ErrCorruptHeader aliases the repository-wide typed error returned
// (wrapped) by Open when the header magic is intact but the checksum over
// the static header words fails — torn head metadata.
var ErrCorruptHeader = ptm.ErrCorruptHeader

// ErrCorruptLog aliases the typed error returned (wrapped) by Open when a
// committed redo-log segment is structurally invalid; replaying it would
// corrupt the heap.
var ErrCorruptLog = ptm.ErrCorruptLog

// headerChecksum covers the static header words written once at format.
func headerChecksum(version, regionSize, segSize, numSegs uint64) uint64 {
	return ptm.HeaderChecksum(magicValue, version, regionSize, segSize, numSegs)
}

// Config tunes the engine.
type Config struct {
	// Model is the persistence model for freshly created devices.
	Model pmem.Model
	// SegmentSize is the per-transaction redo-log capacity in bytes
	// (default 256 KiB, i.e. 4K stored words).
	SegmentSize int
	// Segments is the number of concurrent commit logs (default 8).
	Segments int
	// Audit, when non-nil, receives the engine's durability-protocol
	// markers (ptm.Auditor). Because commits run concurrently, the engine
	// only emits TxBegin/DurablePoint when a commit is the sole one in
	// flight; overlapping commits are counted but not individually audited.
	Audit ptm.Auditor
}

const (
	defaultSegSize  = 256 << 10
	defaultSegments = 8
)

// Engine is the redo-log STM PTM. It implements ptm.HandlePTM.
type Engine struct {
	dev        *pmem.Device
	mainBase   int
	logBase    int
	regionSize int
	segSize    int
	numSegs    int
	heap       *alloc.Heap

	clock   atomic.Uint64
	stripes []atomic.Uint64 // one versioned lock per 8-byte word
	segMu   []sync.Mutex
	reg     hsync.Registry
	handles chan *Handle

	updates atomic.Uint64
	readTxs atomic.Uint64
	aborts  atomic.Uint64

	// trace receives one obs.TxEvent per completed transaction when
	// non-nil; set only at quiescent points (SetTrace). Unlike the
	// single-writer engines, events are emitted concurrently here, so the
	// sink's own concurrency guarantee is what serializes them.
	trace obs.Sink

	// aud receives durability-protocol markers when non-nil; activeCommits
	// tracks overlapping commits so audit markers are only emitted for
	// commits with the device to themselves.
	aud           ptm.Auditor
	activeCommits atomic.Int32
}

var _ ptm.HandlePTM = (*Engine)(nil)

// MinRegionSize is the smallest usable main-region size.
const MinRegionSize = heapBase + alloc.MinSize

// New creates and formats a fresh engine.
func New(regionSize int, cfg Config) (*Engine, error) {
	applyDefaults(&cfg)
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("redolog: region size %d below minimum %d", regionSize, MinRegionSize)
	}
	regionSize = ptm.Align(regionSize, pmem.LineSize)
	dev := pmem.New(headSize+regionSize+cfg.Segments*cfg.SegmentSize, cfg.Model)
	return Open(dev, cfg)
}

func applyDefaults(cfg *Config) {
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = defaultSegSize
	}
	cfg.SegmentSize = ptm.Align(cfg.SegmentSize, pmem.LineSize)
	if cfg.Segments == 0 {
		cfg.Segments = defaultSegments
	}
}

// Open attaches to a device, formatting a blank one and replaying any
// committed-but-unapplied redo logs otherwise.
func Open(dev *pmem.Device, cfg Config) (*Engine, error) {
	applyDefaults(&cfg)
	regionSize := dev.Size() - headSize - cfg.Segments*cfg.SegmentSize
	if regionSize < MinRegionSize {
		return nil, fmt.Errorf("redolog: device too small for region and %d log segments", cfg.Segments)
	}
	e := &Engine{
		dev:        dev,
		mainBase:   headSize,
		logBase:    headSize + regionSize,
		regionSize: regionSize,
		segSize:    cfg.SegmentSize,
		numSegs:    cfg.Segments,
		stripes:    make([]atomic.Uint64, regionSize/8),
		segMu:      make([]sync.Mutex, cfg.Segments),
		handles:    make(chan *Handle, hsync.MaxThreads),
	}
	e.aud = cfg.Audit
	openTrips := dev.FaultsTripped()
	if dev.Load64(offMagic) != magicValue {
		// A NONZERO wrong magic with a header checksum validating against the
		// true magic constant is a rotted magic word, not a blank device.
		// Magic zero stays "unformatted" — a crash mid-format can leave a
		// durable checksum before the magic publish.
		if sum := dev.Load64(offHeadSum); dev.Load64(offMagic) != 0 && sum != 0 &&
			sum == headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize),
				dev.Load64(offSegSize), dev.Load64(offNumSegs)) {
			return nil, fmt.Errorf("redolog: magic %#x but header checksum matches a formatted region: %w",
				dev.Load64(offMagic), ErrCorruptHeader)
		}
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "format")
		}
		if err := e.format(); err != nil {
			if a := e.aud; a != nil {
				a.TxEnd()
			}
			return nil, err
		}
		if a := e.aud; a != nil {
			a.DurablePoint("format")
			a.TxEnd()
		}
	} else {
		if sum := headerChecksum(dev.Load64(offVersion), dev.Load64(offRegionSize),
			dev.Load64(offSegSize), dev.Load64(offNumSegs)); dev.Load64(offHeadSum) != sum {
			return nil, fmt.Errorf("redolog: header checksum %#x, computed %#x: %w",
				dev.Load64(offHeadSum), sum, ErrCorruptHeader)
		}
		if got := dev.Load64(offVersion); got != layoutVersion {
			return nil, fmt.Errorf("redolog: layout version %d, want %d", got, layoutVersion)
		}
		if got := dev.Load64(offRegionSize); got != uint64(regionSize) {
			return nil, fmt.Errorf("redolog: header region size %d, device implies %d", got, regionSize)
		}
		if got := dev.Load64(offSegSize); got != uint64(cfg.SegmentSize) {
			return nil, fmt.Errorf("redolog: header segment size %d, config says %d", got, cfg.SegmentSize)
		}
		if a := e.aud; a != nil {
			a.TxBegin(e.Name(), "recovery")
		}
		if err := e.recover(); err != nil {
			if a := e.aud; a != nil {
				a.TxEnd()
			}
			return nil, err
		}
		if a := e.aud; a != nil {
			a.DurablePoint("recovery")
			a.TxEnd()
		}
	}
	if dev.FaultsTripped() != openTrips {
		return nil, fmt.Errorf("redolog: media fault during open: %w", dev.FaultError())
	}
	heap, err := alloc.Open(rawMem{e}, heapBase)
	if err != nil {
		return nil, fmt.Errorf("redolog: opening allocator: %w", err)
	}
	e.heap = heap
	return e, nil
}

func (e *Engine) format() error {
	d := e.dev
	d.Store64(offVersion, layoutVersion)
	d.Store64(offRegionSize, uint64(e.regionSize))
	d.Store64(offSegSize, uint64(e.segSize))
	d.Store64(offNumSegs, uint64(e.numSegs))
	d.Store64(offHeadSum, headerChecksum(layoutVersion, uint64(e.regionSize), uint64(e.segSize), uint64(e.numSegs)))
	for s := 0; s < e.numSegs; s++ {
		d.Store64(e.segBase(s)+segCommitted, 0)
	}
	if _, err := alloc.Format(rawMem{e}, heapBase, uint64(e.regionSize-heapBase)); err != nil {
		return fmt.Errorf("redolog: formatting heap: %w", err)
	}
	top := int(mustHeapTop(e))
	d.PwbRange(0, headSize)
	d.PwbRange(e.mainBase, top)
	for s := 0; s < e.numSegs; s++ {
		d.Pwb(e.segBase(s) + segCommitted)
	}
	d.Pfence()
	d.Store64(offMagic, magicValue)
	d.Pwb(offMagic)
	d.Pfence()
	return nil
}

func mustHeapTop(e *Engine) uint64 {
	h, err := alloc.Open(rawMem{e}, heapBase)
	if err != nil {
		panic(fmt.Sprintf("redolog: heap vanished after format: %v", err))
	}
	return h.Top()
}

func (e *Engine) segBase(s int) int { return e.logBase + s*e.segSize }

// recover replays every committed redo-log segment: the logged values are
// the transaction's durable effects; re-applying them is idempotent. A
// committed segment whose count or entry addresses fall outside the region
// cannot have been written by commit — replaying it would corrupt the heap,
// so recovery refuses with ErrCorruptLog instead.
func (e *Engine) recover() error {
	d := e.dev
	maxEntries := (e.segSize - segEntries) / entrySize
	for s := 0; s < e.numSegs; s++ {
		base := e.segBase(s)
		flag := d.Load64(base + segCommitted)
		if flag == 0 {
			continue
		}
		if flag != segDone {
			return fmt.Errorf("redolog: segment %d committed flag %#x is neither empty nor committed (rotted flag): %w",
				s, flag, ErrCorruptLog)
		}
		n := int(d.Load64(base + segCount))
		if n < 0 || n > maxEntries {
			return fmt.Errorf("redolog: segment %d committed with %d entries, capacity %d: %w",
				s, n, maxEntries, ErrCorruptLog)
		}
		for i := 0; i < n; i++ {
			o := base + segEntries + i*entrySize
			addr := int(d.Load64(o))
			if addr < 0 || addr+8 > e.regionSize {
				return fmt.Errorf("redolog: segment %d entry %d targets offset %d beyond region %d: %w",
					s, i, addr, e.regionSize, ErrCorruptLog)
			}
			val := d.Load64(o + 8)
			d.Store64(e.mainBase+addr, val)
			d.Pwb(e.mainBase + addr)
		}
		d.Pfence()
		d.Store64(base+segCommitted, 0)
		d.Pwb(base + segCommitted)
		d.Pfence()
	}
	return nil
}

// RecoveryPending reports whether reopening a device with the given raw
// image (as produced by pmem.Device.CrashImage) would have to replay at
// least one committed redo-log segment. cfg must match the configuration
// the image was created with.
func RecoveryPending(img []byte, cfg Config) bool {
	applyDefaults(&cfg)
	load := func(off int) uint64 {
		if off < 0 || off+8 > len(img) {
			return 0
		}
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(img[off+i])
		}
		return v
	}
	if load(offMagic) != magicValue {
		return false
	}
	regionSize := len(img) - headSize - cfg.Segments*cfg.SegmentSize
	if regionSize < MinRegionSize {
		return false
	}
	logBase := headSize + regionSize
	for s := 0; s < cfg.Segments; s++ {
		if load(logBase+s*cfg.SegmentSize+segCommitted) != 0 {
			return true
		}
	}
	return false
}

// stripe returns the versioned lock guarding the aligned word at w.
func (e *Engine) stripe(w uint64) *atomic.Uint64 { return &e.stripes[w>>3] }

const lockedBit = 1

func version(v uint64) uint64 { return v >> 1 }
func isLocked(v uint64) bool  { return v&lockedBit != 0 }

// Name implements ptm.PTM. The engine reports as "mne", its role in the
// paper's evaluation.
func (e *Engine) Name() string { return "mne" }

// Stats implements ptm.PTM.
func (e *Engine) Stats() ptm.TxStats {
	return ptm.TxStats{
		UpdateTxs: e.updates.Load(),
		ReadTxs:   e.readTxs.Load(),
		Aborts:    e.aborts.Load(),
	}
}

// SetTrace installs (or, with nil, removes) the per-transaction trace sink;
// it implements obs.Traceable. Call at a quiescent point. Because commits
// run concurrently, per-transaction pwb and fence counts are derived from
// the commit protocol's structure rather than from the (global) device
// counters.
func (e *Engine) SetTrace(s obs.Sink) { e.trace = s }

// Device exposes the underlying device for statistics and crash testing.
func (e *Engine) Device() *pmem.Device { return e.dev }

// DataOffsets returns the device offsets of user heap address 0 — a single
// element, since the redo-log engine keeps one copy of the data. Fault-
// injection harnesses use it to address user data on the raw device.
func (e *Engine) DataOffsets() []int { return []int{e.mainBase} }

// CheckHeap validates allocator invariants; used by recovery tests.
func (e *Engine) CheckHeap() error { return e.heap.CheckInvariants() }

// SetAuditor installs (or, with nil, removes) the durability auditor. Call
// at a quiescent point; protocol work done earlier is simply unaudited.
func (e *Engine) SetAuditor(a ptm.Auditor) { e.aud = a }

// Close implements ptm.PTM.
func (e *Engine) Close() error {
	if a := e.aud; a != nil {
		a.EngineClose(e.Name())
	}
	return nil
}

// rawMem gives the allocator direct access during format/validation; at
// runtime allocator calls flow through transactions instead (txMem).
type rawMem struct{ e *Engine }

func (m rawMem) Load64(off uint64) uint64     { return m.e.dev.Load64(m.e.mainBase + int(off)) }
func (m rawMem) Store64(off uint64, v uint64) { m.e.dev.Store64(m.e.mainBase+int(off), v) }

// backoff yields with quadratic growth after aborts.
func backoff(attempt int) {
	if attempt < 2 {
		return
	}
	spins := attempt * attempt
	if spins > 64 {
		spins = 64
	}
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
}
