package pstruct

import "repro/internal/ptm"

// Ordered-map navigation for RBTree: minimum, maximum, floor, ceiling and
// bounded range scans. These extend the paper's benchmark structure into
// the sorted-map API a downstream user of a persistent tree actually
// needs; all run in O(log n) loads plus output size.

// Min returns the smallest key and its value; ok is false for an empty
// tree.
func (t *RBTree) Min(tx ptm.Tx) (k, v uint64, ok bool) {
	c := t.cur(tx)
	n := c.treeRoot()
	if n == c.nil_ {
		return 0, 0, false
	}
	n = c.minimum(n)
	return c.key(n), c.val(n), true
}

// Max returns the largest key and its value; ok is false for an empty
// tree.
func (t *RBTree) Max(tx ptm.Tx) (k, v uint64, ok bool) {
	c := t.cur(tx)
	n := c.treeRoot()
	if n == c.nil_ {
		return 0, 0, false
	}
	for c.right(n) != c.nil_ {
		n = c.right(n)
	}
	return c.key(n), c.val(n), true
}

// Floor returns the largest key <= bound; ok is false when every key is
// greater.
func (t *RBTree) Floor(tx ptm.Tx, bound uint64) (k, v uint64, ok bool) {
	c := t.cur(tx)
	best := c.nil_
	n := c.treeRoot()
	for n != c.nil_ {
		nk := c.key(n)
		switch {
		case nk == bound:
			return nk, c.val(n), true
		case nk < bound:
			best = n
			n = c.right(n)
		default:
			n = c.left(n)
		}
	}
	if best == c.nil_ {
		return 0, 0, false
	}
	return c.key(best), c.val(best), true
}

// Ceiling returns the smallest key >= bound; ok is false when every key is
// smaller.
func (t *RBTree) Ceiling(tx ptm.Tx, bound uint64) (k, v uint64, ok bool) {
	c := t.cur(tx)
	best := c.nil_
	n := c.treeRoot()
	for n != c.nil_ {
		nk := c.key(n)
		switch {
		case nk == bound:
			return nk, c.val(n), true
		case nk > bound:
			best = n
			n = c.left(n)
		default:
			n = c.right(n)
		}
	}
	if best == c.nil_ {
		return 0, 0, false
	}
	return c.key(best), c.val(best), true
}

// RangeBetween calls fn for every pair with lo <= key <= hi, ascending,
// until fn returns false. It visits only the O(log n + output) relevant
// part of the tree.
func (t *RBTree) RangeBetween(tx ptm.Tx, lo, hi uint64, fn func(k, v uint64) bool) {
	c := t.cur(tx)
	c.rangeNode(c.treeRoot(), lo, hi, fn)
}

func (c rbCursor) rangeNode(n ptm.Ptr, lo, hi uint64, fn func(k, v uint64) bool) bool {
	if n == c.nil_ {
		return true
	}
	k := c.key(n)
	if k > lo {
		if !c.rangeNode(c.left(n), lo, hi, fn) {
			return false
		}
	}
	if k >= lo && k <= hi {
		if !fn(k, c.val(n)) {
			return false
		}
	}
	if k < hi {
		return c.rangeNode(c.right(n), lo, hi, fn)
	}
	return true
}
