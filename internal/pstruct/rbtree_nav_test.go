package pstruct_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pstruct"
	"repro/internal/ptm"
)

func navTree(t *testing.T, keys []uint64) (interface {
	Read(fn func(ptm.Tx) error) error
}, *pstruct.RBTree) {
	t.Helper()
	e := romlog(t)
	var tree *pstruct.RBTree
	if err := e.Update(func(tx ptm.Tx) error {
		var err error
		tree, err = pstruct.NewRBTree(tx, 0)
		if err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := tree.Put(tx, k, k*3); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return e, tree
}

func TestRBTreeMinMaxEmpty(t *testing.T) {
	e, tree := navTree(t, nil)
	e.Read(func(tx ptm.Tx) error {
		if _, _, ok := tree.Min(tx); ok {
			t.Error("Min on empty tree reported ok")
		}
		if _, _, ok := tree.Max(tx); ok {
			t.Error("Max on empty tree reported ok")
		}
		if _, _, ok := tree.Floor(tx, 10); ok {
			t.Error("Floor on empty tree reported ok")
		}
		if _, _, ok := tree.Ceiling(tx, 10); ok {
			t.Error("Ceiling on empty tree reported ok")
		}
		return nil
	})
}

func TestRBTreeNavigation(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50}
	e, tree := navTree(t, keys)
	e.Read(func(tx ptm.Tx) error {
		if k, v, ok := tree.Min(tx); !ok || k != 10 || v != 30 {
			t.Errorf("Min = %d,%d,%v", k, v, ok)
		}
		if k, _, ok := tree.Max(tx); !ok || k != 50 {
			t.Errorf("Max = %d,%v", k, ok)
		}
		// Floor: exact, between, below-all.
		if k, _, ok := tree.Floor(tx, 30); !ok || k != 30 {
			t.Errorf("Floor(30) = %d,%v", k, ok)
		}
		if k, _, ok := tree.Floor(tx, 35); !ok || k != 30 {
			t.Errorf("Floor(35) = %d,%v", k, ok)
		}
		if _, _, ok := tree.Floor(tx, 5); ok {
			t.Error("Floor(5) should miss")
		}
		// Ceiling: exact, between, above-all.
		if k, _, ok := tree.Ceiling(tx, 30); !ok || k != 30 {
			t.Errorf("Ceiling(30) = %d,%v", k, ok)
		}
		if k, _, ok := tree.Ceiling(tx, 35); !ok || k != 40 {
			t.Errorf("Ceiling(35) = %d,%v", k, ok)
		}
		if _, _, ok := tree.Ceiling(tx, 55); ok {
			t.Error("Ceiling(55) should miss")
		}
		return nil
	})
}

func TestRBTreeRangeBetween(t *testing.T) {
	var keys []uint64
	for k := uint64(0); k < 100; k += 2 {
		keys = append(keys, k)
	}
	e, tree := navTree(t, keys)
	e.Read(func(tx ptm.Tx) error {
		var got []uint64
		tree.RangeBetween(tx, 10, 30, func(k, v uint64) bool {
			got = append(got, k)
			return true
		})
		want := []uint64{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
		if len(got) != len(want) {
			t.Fatalf("RangeBetween = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RangeBetween = %v", got)
			}
		}
		// Early stop.
		n := 0
		tree.RangeBetween(tx, 0, 98, func(k, v uint64) bool { n++; return n < 3 })
		if n != 3 {
			t.Errorf("early stop visited %d", n)
		}
		// Empty interval.
		n = 0
		tree.RangeBetween(tx, 11, 11, func(k, v uint64) bool { n++; return true })
		if n != 0 {
			t.Errorf("odd-key interval visited %d", n)
		}
		return nil
	})
}

func TestRBTreeNavigationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var keys []uint64
	seen := map[uint64]bool{}
	for len(keys) < 200 {
		k := uint64(rng.Intn(10_000))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	e, tree := navTree(t, keys)
	e.Read(func(tx ptm.Tx) error {
		for trial := 0; trial < 200; trial++ {
			bound := uint64(rng.Intn(10_000))
			// Reference floor/ceiling by scanning the sorted slice.
			var wantFloor, wantCeil uint64
			haveFloor, haveCeil := false, false
			for _, k := range sorted {
				if k <= bound {
					wantFloor, haveFloor = k, true
				}
				if k >= bound && !haveCeil {
					wantCeil, haveCeil = k, true
				}
			}
			k, _, ok := tree.Floor(tx, bound)
			if ok != haveFloor || (ok && k != wantFloor) {
				t.Fatalf("Floor(%d) = %d,%v want %d,%v", bound, k, ok, wantFloor, haveFloor)
			}
			k, _, ok = tree.Ceiling(tx, bound)
			if ok != haveCeil || (ok && k != wantCeil) {
				t.Fatalf("Ceiling(%d) = %d,%v want %d,%v", bound, k, ok, wantCeil, haveCeil)
			}
		}
		return nil
	})
}
