// Package pstruct implements the persistent data structures the Romulus
// paper evaluates (§6.2): a sorted linked-list set (Algorithm 2), a
// resizable chained hash map whose shared element counter is the contention
// point discussed for Figure 4/5, a statically-dimensioned hash map with
// variable-size byte values (Figure 5), and a red-black tree. A byte-key
// map backs the RomulusDB key-value store (§6.4).
//
// Every structure is engine-agnostic: all state lives in persistent memory
// reached through ptm.Tx, and the structure handles themselves are
// stateless (they hold only a root-pointer index), so they survive restarts
// and work identically on all five PTM engines.
package pstruct

import (
	"errors"

	"repro/internal/ptm"
)

// ErrNotFound is returned by lookup-style operations that miss.
var ErrNotFound = errors.New("pstruct: key not found")

// hash64 is Fibonacci hashing for integer keys.
func hash64(key uint64) uint64 {
	return key * 0x9E3779B97F4A7C15
}

// hashBytes is FNV-1a for byte-string keys.
func hashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// field reads the 8-byte field at byte offset off of the object at p.
func field(tx ptm.Tx, p ptm.Ptr, off int) ptm.Ptr {
	return ptm.Ptr(tx.Load64(p + ptm.Ptr(off)))
}

func setField(tx ptm.Tx, p ptm.Ptr, off int, v ptm.Ptr) {
	tx.Store64(p+ptm.Ptr(off), uint64(v))
}
