package pstruct_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

func TestQueueFIFO(t *testing.T) {
	e := romlog(t)
	var q *pstruct.Queue
	e.Update(func(tx ptm.Tx) error {
		var err error
		q, err = pstruct.NewQueue(tx, 0)
		return err
	})
	e.Read(func(tx ptm.Tx) error {
		if _, ok := q.Peek(tx); ok {
			t.Error("Peek on empty queue")
		}
		if q.Len(tx) != 0 {
			t.Error("fresh queue not empty")
		}
		return nil
	})
	e.Update(func(tx ptm.Tx) error {
		if _, ok, err := q.Dequeue(tx); ok || err != nil {
			t.Errorf("Dequeue empty = %v, %v", ok, err)
		}
		for v := uint64(1); v <= 5; v++ {
			if err := q.Enqueue(tx, v); err != nil {
				return err
			}
		}
		return nil
	})
	e.Update(func(tx ptm.Tx) error {
		if v, ok := q.Peek(tx); !ok || v != 1 {
			t.Errorf("Peek = %d, %v", v, ok)
		}
		for want := uint64(1); want <= 5; want++ {
			v, ok, err := q.Dequeue(tx)
			if err != nil || !ok || v != want {
				t.Fatalf("Dequeue = %d, %v, %v; want %d", v, ok, err, want)
			}
		}
		if _, ok, _ := q.Dequeue(tx); ok {
			t.Error("Dequeue after drain succeeded")
		}
		return nil
	})
}

func TestQueueModel(t *testing.T) {
	e := romlog(t)
	var q *pstruct.Queue
	e.Update(func(tx ptm.Tx) error {
		var err error
		q, err = pstruct.NewQueue(tx, 0)
		return err
	})
	rng := rand.New(rand.NewSource(8))
	var model []uint64
	for i := 0; i < 500; i++ {
		if len(model) == 0 || rng.Intn(2) == 0 {
			v := rng.Uint64()
			if err := e.Update(func(tx ptm.Tx) error { return q.Enqueue(tx, v) }); err != nil {
				t.Fatal(err)
			}
			model = append(model, v)
		} else {
			var got uint64
			var ok bool
			if err := e.Update(func(tx ptm.Tx) error {
				var err error
				got, ok, err = q.Dequeue(tx)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if !ok || got != model[0] {
				t.Fatalf("Dequeue = %d, %v; want %d", got, ok, model[0])
			}
			model = model[1:]
		}
		e.Read(func(tx ptm.Tx) error {
			if q.Len(tx) != len(model) {
				t.Fatalf("Len = %d, model %d", q.Len(tx), len(model))
			}
			return nil
		})
	}
}

func TestQueueSurvivesCrash(t *testing.T) {
	e, err := core.New(1<<20, core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	var q *pstruct.Queue
	e.Update(func(tx ptm.Tx) error {
		var err error
		q, err = pstruct.NewQueue(tx, 0)
		if err != nil {
			return err
		}
		for v := uint64(0); v < 10; v++ {
			if err := q.Enqueue(tx, v); err != nil {
				return err
			}
		}
		return nil
	})
	dev := e.Device()
	var img []byte
	dev.SetHooks(&pmem.Hooks{Pwb: func(n uint64) {
		if img == nil && n > 3 {
			img = dev.CrashImage(pmem.KeepQueued)
		}
	}})
	// Mid-transaction crash during a dequeue+enqueue pair.
	e.Update(func(tx ptm.Tx) error {
		if _, _, err := q.Dequeue(tx); err != nil {
			return err
		}
		return q.Enqueue(tx, 100)
	})
	dev.SetHooks(nil)
	re, err := core.Open(pmem.FromImage(img, pmem.ModelDRAM), core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	q2 := pstruct.AttachQueue(0)
	re.Read(func(tx ptm.Tx) error {
		n := q2.Len(tx)
		if n != 10 {
			t.Errorf("Len after rollback = %d, want 10", n)
		}
		if v, ok := q2.Peek(tx); !ok || v != 0 {
			t.Errorf("head after rollback = %d, %v", v, ok)
		}
		return nil
	})
}
