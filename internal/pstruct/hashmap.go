package pstruct

import "repro/internal/ptm"

// HashMap is the resizable chained hash map of §6.2: buckets double when
// the load factor exceeds 2, and a shared element counter is updated by
// every insertion and removal. On the Romulus engines the counter is
// harmless (writers are serialized anyway); on a fine-grained STM like the
// Mnemosyne baseline it makes every pair of concurrent updates conflict —
// the scalability collapse the paper demonstrates in Figure 4.
//
// Map object layout (24 bytes): +0 buckets ptr, +8 bucket count, +16 size.
// Node layout (24 bytes): +0 key, +8 value, +16 next.
type HashMap struct {
	root int
}

const (
	hmBuckets = 0
	hmNBkts   = 8
	hmSize    = 16

	hmNodeKey  = 0
	hmNodeVal  = 8
	hmNodeNext = 16
	hmNodeSize = 24

	hmInitialBuckets = 16
	hmMaxLoad        = 2 // resize when size > hmMaxLoad * buckets
)

// NewHashMap creates a map under the root index if absent and returns a
// handle.
func NewHashMap(tx ptm.Tx, root int) (*HashMap, error) {
	if !tx.Root(root).IsNil() {
		return &HashMap{root: root}, nil
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	bkts, err := tx.Alloc(hmInitialBuckets * 8)
	if err != nil {
		return nil, err
	}
	setField(tx, obj, hmBuckets, bkts)
	tx.Store64(obj+hmNBkts, hmInitialBuckets)
	tx.SetRoot(root, obj)
	return &HashMap{root: root}, nil
}

// AttachHashMap returns a handle to an existing map.
func AttachHashMap(root int) *HashMap { return &HashMap{root: root} }

func (m *HashMap) bucket(tx ptm.Tx, obj ptm.Ptr, key uint64) ptm.Ptr {
	n := tx.Load64(obj + hmNBkts)
	idx := hash64(key) % n
	return field(tx, obj, hmBuckets) + ptm.Ptr(idx*8)
}

// Get returns the value for key, or ErrNotFound.
func (m *HashMap) Get(tx ptm.Tx, key uint64) (uint64, error) {
	obj := tx.Root(m.root)
	for n := ptm.Ptr(tx.Load64(m.bucket(tx, obj, key))); !n.IsNil(); n = field(tx, n, hmNodeNext) {
		if tx.Load64(n+hmNodeKey) == key {
			return tx.Load64(n + hmNodeVal), nil
		}
	}
	return 0, ErrNotFound
}

// Contains reports whether key is present.
func (m *HashMap) Contains(tx ptm.Tx, key uint64) bool {
	_, err := m.Get(tx, key)
	return err == nil
}

// Put inserts or updates key, reporting whether it was absent.
func (m *HashMap) Put(tx ptm.Tx, key, val uint64) (bool, error) {
	obj := tx.Root(m.root)
	slot := m.bucket(tx, obj, key)
	for n := ptm.Ptr(tx.Load64(slot)); !n.IsNil(); n = field(tx, n, hmNodeNext) {
		if tx.Load64(n+hmNodeKey) == key {
			tx.Store64(n+hmNodeVal, val)
			return false, nil
		}
	}
	node, err := tx.Alloc(hmNodeSize)
	if err != nil {
		return false, err
	}
	tx.Store64(node+hmNodeKey, key)
	tx.Store64(node+hmNodeVal, val)
	tx.Store64(node+hmNodeNext, tx.Load64(slot))
	tx.Store64(slot, uint64(node))
	size := tx.Load64(obj+hmSize) + 1
	tx.Store64(obj+hmSize, size) // the shared counter
	if size > hmMaxLoad*tx.Load64(obj+hmNBkts) {
		if err := m.resize(tx, obj); err != nil {
			return false, err
		}
	}
	return true, nil
}

// Remove deletes key, reporting whether it was present.
func (m *HashMap) Remove(tx ptm.Tx, key uint64) (bool, error) {
	obj := tx.Root(m.root)
	slot := m.bucket(tx, obj, key)
	prev := ptm.Ptr(0)
	for n := ptm.Ptr(tx.Load64(slot)); !n.IsNil(); n = field(tx, n, hmNodeNext) {
		if tx.Load64(n+hmNodeKey) == key {
			next := tx.Load64(n + hmNodeNext)
			if prev.IsNil() {
				tx.Store64(slot, next)
			} else {
				tx.Store64(prev+hmNodeNext, next)
			}
			tx.Store64(obj+hmSize, tx.Load64(obj+hmSize)-1)
			return true, tx.Free(n)
		}
		prev = n
	}
	return false, nil
}

// resize doubles the bucket array and rehashes every node, all within the
// caller's transaction (a deliberately large transaction, as in the paper's
// implementation).
func (m *HashMap) resize(tx ptm.Tx, obj ptm.Ptr) error {
	oldN := tx.Load64(obj + hmNBkts)
	oldB := field(tx, obj, hmBuckets)
	newN := oldN * 2
	newB, err := tx.Alloc(int(newN * 8))
	if err != nil {
		// Out of space for a bigger table: keep the old one (chains grow).
		if err == ptm.ErrOutOfMemory {
			return nil
		}
		return err
	}
	for i := uint64(0); i < oldN; i++ {
		n := ptm.Ptr(tx.Load64(oldB + ptm.Ptr(i*8)))
		for !n.IsNil() {
			next := field(tx, n, hmNodeNext)
			idx := hash64(tx.Load64(n+hmNodeKey)) % newN
			slot := newB + ptm.Ptr(idx*8)
			tx.Store64(n+hmNodeNext, tx.Load64(slot))
			tx.Store64(slot, uint64(n))
			n = next
		}
	}
	setField(tx, obj, hmBuckets, newB)
	tx.Store64(obj+hmNBkts, newN)
	return tx.Free(oldB)
}

// Len returns the number of entries (the shared counter).
func (m *HashMap) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(m.root) + hmSize))
}

// Buckets returns the current bucket count.
func (m *HashMap) Buckets(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(m.root) + hmNBkts))
}

// Range calls fn for every (key, value) pair until fn returns false.
// Iteration order is by bucket, then chain.
func (m *HashMap) Range(tx ptm.Tx, fn func(key, val uint64) bool) {
	obj := tx.Root(m.root)
	nb := tx.Load64(obj + hmNBkts)
	bkts := field(tx, obj, hmBuckets)
	for i := uint64(0); i < nb; i++ {
		for n := ptm.Ptr(tx.Load64(bkts + ptm.Ptr(i*8))); !n.IsNil(); n = field(tx, n, hmNodeNext) {
			if !fn(tx.Load64(n+hmNodeKey), tx.Load64(n+hmNodeVal)) {
				return
			}
		}
	}
}
