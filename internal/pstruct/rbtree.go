package pstruct

import "repro/internal/ptm"

// RBTree is a persistent red-black tree (sorted map from uint64 keys to
// uint64 values), the third data structure of the paper's §6.2 evaluation.
// It follows the classic CLRS formulation with an allocated sentinel node
// standing in for nil leaves (the sentinel's parent field is scratch space
// during delete fix-up, exactly as in CLRS).
//
// Tree object layout (24 bytes): +0 root node, +8 size, +16 sentinel.
// Node layout (48 bytes): key, value, left, right, parent, color.
type RBTree struct {
	root int
}

const (
	rbRoot = 0
	rbSize = 8
	rbNil  = 16

	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40
	rbNode   = 48

	black = 0
	red   = 1
)

// NewRBTree creates a tree under the root index if absent.
func NewRBTree(tx ptm.Tx, root int) (*RBTree, error) {
	if !tx.Root(root).IsNil() {
		return &RBTree{root: root}, nil
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	sentinel, err := tx.Alloc(rbNode)
	if err != nil {
		return nil, err
	}
	// Sentinel is black; its children point at itself.
	tx.Store64(sentinel+rbLeft, uint64(sentinel))
	tx.Store64(sentinel+rbRight, uint64(sentinel))
	setField(tx, obj, rbRoot, sentinel)
	setField(tx, obj, rbNil, sentinel)
	tx.SetRoot(root, obj)
	return &RBTree{root: root}, nil
}

// AttachRBTree returns a handle to an existing tree.
func AttachRBTree(root int) *RBTree { return &RBTree{root: root} }

// cursor bundles the per-operation context so the CLRS procedures read
// naturally.
type rbCursor struct {
	tx   ptm.Tx
	obj  ptm.Ptr
	nil_ ptm.Ptr
}

func (t *RBTree) cur(tx ptm.Tx) rbCursor {
	obj := tx.Root(t.root)
	return rbCursor{tx: tx, obj: obj, nil_: field(tx, obj, rbNil)}
}

func (c rbCursor) key(n ptm.Ptr) uint64           { return c.tx.Load64(n + rbKey) }
func (c rbCursor) val(n ptm.Ptr) uint64           { return c.tx.Load64(n + rbVal) }
func (c rbCursor) left(n ptm.Ptr) ptm.Ptr         { return field(c.tx, n, rbLeft) }
func (c rbCursor) right(n ptm.Ptr) ptm.Ptr        { return field(c.tx, n, rbRight) }
func (c rbCursor) parent(n ptm.Ptr) ptm.Ptr       { return field(c.tx, n, rbParent) }
func (c rbCursor) color(n ptm.Ptr) uint64         { return c.tx.Load64(n + rbColor) }
func (c rbCursor) setKey(n ptm.Ptr, k uint64)     { c.tx.Store64(n+rbKey, k) }
func (c rbCursor) setVal(n ptm.Ptr, v uint64)     { c.tx.Store64(n+rbVal, v) }
func (c rbCursor) setLeft(n, v ptm.Ptr)           { setField(c.tx, n, rbLeft, v) }
func (c rbCursor) setRight(n, v ptm.Ptr)          { setField(c.tx, n, rbRight, v) }
func (c rbCursor) setParent(n, v ptm.Ptr)         { setField(c.tx, n, rbParent, v) }
func (c rbCursor) setColor(n ptm.Ptr, col uint64) { c.tx.Store64(n+rbColor, col) }
func (c rbCursor) treeRoot() ptm.Ptr              { return field(c.tx, c.obj, rbRoot) }
func (c rbCursor) setTreeRoot(n ptm.Ptr)          { setField(c.tx, c.obj, rbRoot, n) }

func (c rbCursor) search(k uint64) ptm.Ptr {
	n := c.treeRoot()
	for n != c.nil_ {
		nk := c.key(n)
		switch {
		case k < nk:
			n = c.left(n)
		case k > nk:
			n = c.right(n)
		default:
			return n
		}
	}
	return c.nil_
}

// Get returns the value for k, or ErrNotFound.
func (t *RBTree) Get(tx ptm.Tx, k uint64) (uint64, error) {
	c := t.cur(tx)
	n := c.search(k)
	if n == c.nil_ {
		return 0, ErrNotFound
	}
	return c.val(n), nil
}

// Contains reports whether k is present.
func (t *RBTree) Contains(tx ptm.Tx, k uint64) bool {
	c := t.cur(tx)
	return c.search(k) != c.nil_
}

// Len returns the number of keys.
func (t *RBTree) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(t.root) + rbSize))
}

func (c rbCursor) rotateLeft(x ptm.Ptr) {
	y := c.right(x)
	yl := c.left(y)
	c.setRight(x, yl)
	if yl != c.nil_ {
		c.setParent(yl, x)
	}
	xp := c.parent(x)
	c.setParent(y, xp)
	if x == c.treeRoot() {
		c.setTreeRoot(y)
	} else if x == c.left(xp) {
		c.setLeft(xp, y)
	} else {
		c.setRight(xp, y)
	}
	c.setLeft(y, x)
	c.setParent(x, y)
}

func (c rbCursor) rotateRight(x ptm.Ptr) {
	y := c.left(x)
	yr := c.right(y)
	c.setLeft(x, yr)
	if yr != c.nil_ {
		c.setParent(yr, x)
	}
	xp := c.parent(x)
	c.setParent(y, xp)
	if x == c.treeRoot() {
		c.setTreeRoot(y)
	} else if x == c.right(xp) {
		c.setRight(xp, y)
	} else {
		c.setLeft(xp, y)
	}
	c.setRight(y, x)
	c.setParent(x, y)
}

// Put inserts or updates k, reporting whether it was absent.
func (t *RBTree) Put(tx ptm.Tx, k, v uint64) (bool, error) {
	c := t.cur(tx)
	parent := c.nil_
	n := c.treeRoot()
	for n != c.nil_ {
		parent = n
		nk := c.key(n)
		switch {
		case k < nk:
			n = c.left(n)
		case k > nk:
			n = c.right(n)
		default:
			c.setVal(n, v)
			return false, nil
		}
	}
	z, err := tx.Alloc(rbNode)
	if err != nil {
		return false, err
	}
	c.setKey(z, k)
	c.setVal(z, v)
	c.setLeft(z, c.nil_)
	c.setRight(z, c.nil_)
	c.setParent(z, parent)
	c.setColor(z, red)
	if parent == c.nil_ {
		c.setTreeRoot(z)
	} else if k < c.key(parent) {
		c.setLeft(parent, z)
	} else {
		c.setRight(parent, z)
	}
	c.insertFixup(z)
	tx.Store64(c.obj+rbSize, tx.Load64(c.obj+rbSize)+1)
	return true, nil
}

func (c rbCursor) insertFixup(z ptm.Ptr) {
	for c.color(c.parent(z)) == red {
		zp := c.parent(z)
		zpp := c.parent(zp)
		if zp == c.left(zpp) {
			y := c.right(zpp) // uncle
			if c.color(y) == red {
				c.setColor(zp, black)
				c.setColor(y, black)
				c.setColor(zpp, red)
				z = zpp
			} else {
				if z == c.right(zp) {
					z = zp
					c.rotateLeft(z)
					zp = c.parent(z)
					zpp = c.parent(zp)
				}
				c.setColor(zp, black)
				c.setColor(zpp, red)
				c.rotateRight(zpp)
			}
		} else {
			y := c.left(zpp)
			if c.color(y) == red {
				c.setColor(zp, black)
				c.setColor(y, black)
				c.setColor(zpp, red)
				z = zpp
			} else {
				if z == c.left(zp) {
					z = zp
					c.rotateRight(z)
					zp = c.parent(z)
					zpp = c.parent(zp)
				}
				c.setColor(zp, black)
				c.setColor(zpp, red)
				c.rotateLeft(zpp)
			}
		}
	}
	c.setColor(c.treeRoot(), black)
}

func (c rbCursor) transplant(u, v ptm.Ptr) {
	up := c.parent(u)
	if up == c.nil_ {
		c.setTreeRoot(v)
	} else if u == c.left(up) {
		c.setLeft(up, v)
	} else {
		c.setRight(up, v)
	}
	c.setParent(v, up)
}

func (c rbCursor) minimum(n ptm.Ptr) ptm.Ptr {
	for c.left(n) != c.nil_ {
		n = c.left(n)
	}
	return n
}

// Remove deletes k, reporting whether it was present.
func (t *RBTree) Remove(tx ptm.Tx, k uint64) (bool, error) {
	c := t.cur(tx)
	z := c.search(k)
	if z == c.nil_ {
		return false, nil
	}
	y := z
	yColor := c.color(y)
	var x ptm.Ptr
	switch {
	case c.left(z) == c.nil_:
		x = c.right(z)
		c.transplant(z, x)
	case c.right(z) == c.nil_:
		x = c.left(z)
		c.transplant(z, x)
	default:
		y = c.minimum(c.right(z))
		yColor = c.color(y)
		x = c.right(y)
		if c.parent(y) == z {
			c.setParent(x, y) // x may be the sentinel; scratch parent
		} else {
			c.transplant(y, x)
			zr := c.right(z)
			c.setRight(y, zr)
			c.setParent(zr, y)
		}
		c.transplant(z, y)
		zl := c.left(z)
		c.setLeft(y, zl)
		c.setParent(zl, y)
		c.setColor(y, c.color(z))
	}
	if yColor == black {
		c.deleteFixup(x)
	}
	tx.Store64(c.obj+rbSize, tx.Load64(c.obj+rbSize)-1)
	if err := tx.Free(z); err != nil {
		return false, err
	}
	return true, nil
}

func (c rbCursor) deleteFixup(x ptm.Ptr) {
	for x != c.treeRoot() && c.color(x) == black {
		xp := c.parent(x)
		if x == c.left(xp) {
			w := c.right(xp)
			if c.color(w) == red {
				c.setColor(w, black)
				c.setColor(xp, red)
				c.rotateLeft(xp)
				xp = c.parent(x)
				w = c.right(xp)
			}
			if c.color(c.left(w)) == black && c.color(c.right(w)) == black {
				c.setColor(w, red)
				x = xp
			} else {
				if c.color(c.right(w)) == black {
					c.setColor(c.left(w), black)
					c.setColor(w, red)
					c.rotateRight(w)
					xp = c.parent(x)
					w = c.right(xp)
				}
				c.setColor(w, c.color(xp))
				c.setColor(xp, black)
				c.setColor(c.right(w), black)
				c.rotateLeft(xp)
				x = c.treeRoot()
			}
		} else {
			w := c.left(xp)
			if c.color(w) == red {
				c.setColor(w, black)
				c.setColor(xp, red)
				c.rotateRight(xp)
				xp = c.parent(x)
				w = c.left(xp)
			}
			if c.color(c.right(w)) == black && c.color(c.left(w)) == black {
				c.setColor(w, red)
				x = xp
			} else {
				if c.color(c.left(w)) == black {
					c.setColor(c.right(w), black)
					c.setColor(w, red)
					c.rotateLeft(w)
					xp = c.parent(x)
					w = c.left(xp)
				}
				c.setColor(w, c.color(xp))
				c.setColor(xp, black)
				c.setColor(c.left(w), black)
				c.rotateRight(xp)
				x = c.treeRoot()
			}
		}
	}
	c.setColor(x, black)
}

// Range calls fn for every pair in ascending key order until fn returns
// false, using an iterative in-order traversal.
func (t *RBTree) Range(tx ptm.Tx, fn func(k, v uint64) bool) {
	c := t.cur(tx)
	var stack []ptm.Ptr
	n := c.treeRoot()
	for n != c.nil_ || len(stack) > 0 {
		for n != c.nil_ {
			stack = append(stack, n)
			n = c.left(n)
		}
		n = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(c.key(n), c.val(n)) {
			return
		}
		n = c.right(n)
	}
}

// CheckInvariants verifies the red-black properties: root is black, no red
// node has a red child, and every root-to-leaf path has the same black
// height. Returns the black height or an error description via ok=false.
func (t *RBTree) CheckInvariants(tx ptm.Tx) bool {
	c := t.cur(tx)
	root := c.treeRoot()
	if root != c.nil_ && c.color(root) != black {
		return false
	}
	_, ok := c.checkNode(root)
	return ok
}

func (c rbCursor) checkNode(n ptm.Ptr) (blackHeight int, ok bool) {
	if n == c.nil_ {
		return 1, true
	}
	l, r := c.left(n), c.right(n)
	if c.color(n) == red && (c.color(l) == red || c.color(r) == red) {
		return 0, false
	}
	if l != c.nil_ && c.key(l) >= c.key(n) {
		return 0, false
	}
	if r != c.nil_ && c.key(r) <= c.key(n) {
		return 0, false
	}
	lh, lok := c.checkNode(l)
	rh, rok := c.checkNode(r)
	if !lok || !rok || lh != rh {
		return 0, false
	}
	if c.color(n) == black {
		lh++
	}
	return lh, true
}
