package pstruct_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
	"repro/internal/redolog"
	"repro/internal/undolog"
)

// engines returns one instance of each PTM for cross-engine structure
// tests.
func engines(t testing.TB) map[string]ptm.HandlePTM {
	t.Helper()
	out := map[string]ptm.HandlePTM{}
	for _, v := range []core.Variant{core.Rom, core.RomLog, core.RomLR} {
		e, err := core.New(1<<21, core.Config{Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		out[v.String()] = e
	}
	u, err := undolog.New(1<<21, undolog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out["pmdk"] = u
	r, err := redolog.New(1<<21, redolog.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out["mne"] = r
	return out
}

func romlog(t testing.TB) ptm.HandlePTM {
	t.Helper()
	e, err := core.New(1<<21, core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLinkedListSetBasics(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			var set *pstruct.LinkedListSet
			if err := e.Update(func(tx ptm.Tx) error {
				var err error
				set, err = pstruct.NewLinkedListSet(tx, 0)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			e.Update(func(tx ptm.Tx) error {
				for _, k := range []uint64{5, 1, 9, 3, 7} {
					if added, err := set.Add(tx, k); err != nil || !added {
						return fmt.Errorf("Add(%d) = %v, %v", k, added, err)
					}
				}
				if added, _ := set.Add(tx, 5); added {
					return fmt.Errorf("duplicate Add succeeded")
				}
				return nil
			})
			e.Read(func(tx ptm.Tx) error {
				if set.Len(tx) != 5 {
					t.Errorf("Len = %d", set.Len(tx))
				}
				keys := set.Keys(tx, nil)
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Errorf("keys not sorted: %v", keys)
				}
				if !set.Contains(tx, 7) || set.Contains(tx, 8) {
					t.Error("Contains wrong")
				}
				return nil
			})
			e.Update(func(tx ptm.Tx) error {
				if rem, _ := set.Remove(tx, 3); !rem {
					t.Error("Remove(3) failed")
				}
				if rem, _ := set.Remove(tx, 3); rem {
					t.Error("Remove(3) twice succeeded")
				}
				return nil
			})
			e.Read(func(tx ptm.Tx) error {
				if set.Len(tx) != 4 || set.Contains(tx, 3) {
					t.Error("state wrong after Remove")
				}
				return nil
			})
		})
	}
}

func TestLinkedListSetBoundaryKeys(t *testing.T) {
	e := romlog(t)
	var set *pstruct.LinkedListSet
	e.Update(func(tx ptm.Tx) error {
		var err error
		set, err = pstruct.NewLinkedListSet(tx, 0)
		if err != nil {
			return err
		}
		// Key 0 and near-max keys must work (max uint64 is the tail
		// sentinel's key, so ^uint64(0)-1 is the largest usable key).
		for _, k := range []uint64{0, 1, ^uint64(0) - 1} {
			if added, err := set.Add(tx, k); err != nil || !added {
				t.Errorf("Add(%d) = %v, %v", k, added, err)
			}
		}
		return nil
	})
	e.Read(func(tx ptm.Tx) error {
		for _, k := range []uint64{0, 1, ^uint64(0) - 1} {
			if !set.Contains(tx, k) {
				t.Errorf("Contains(%d) = false", k)
			}
		}
		return nil
	})
}

// Model-based test: the persistent structure must agree with a Go map
// under a random operation sequence, across all engines.
func TestHashMapModel(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			var m *pstruct.HashMap
			if err := e.Update(func(tx ptm.Tx) error {
				var err error
				m, err = pstruct.NewHashMap(tx, 1)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 600; i++ {
				k := uint64(rng.Intn(200))
				switch rng.Intn(3) {
				case 0, 1:
					v := rng.Uint64()
					err := e.Update(func(tx ptm.Tx) error {
						added, err := m.Put(tx, k, v)
						if err != nil {
							return err
						}
						_, existed := model[k]
						if added == existed {
							return fmt.Errorf("Put(%d): added=%v but existed=%v", k, added, existed)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					model[k] = v
				case 2:
					err := e.Update(func(tx ptm.Tx) error {
						removed, err := m.Remove(tx, k)
						if err != nil {
							return err
						}
						_, existed := model[k]
						if removed != existed {
							return fmt.Errorf("Remove(%d): removed=%v existed=%v", k, removed, existed)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				}
			}
			e.Read(func(tx ptm.Tx) error {
				if m.Len(tx) != len(model) {
					t.Errorf("Len = %d, model %d", m.Len(tx), len(model))
				}
				for k, v := range model {
					got, err := m.Get(tx, k)
					if err != nil || got != v {
						t.Errorf("Get(%d) = %d, %v; want %d", k, got, err, v)
					}
				}
				count := 0
				m.Range(tx, func(k, v uint64) bool {
					if model[k] != v {
						t.Errorf("Range visited (%d,%d), model has %d", k, v, model[k])
					}
					count++
					return true
				})
				if count != len(model) {
					t.Errorf("Range visited %d, want %d", count, len(model))
				}
				return nil
			})
		})
	}
}

func TestHashMapResizes(t *testing.T) {
	e := romlog(t)
	var m *pstruct.HashMap
	e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewHashMap(tx, 0)
		return err
	})
	var before int
	e.Read(func(tx ptm.Tx) error { before = m.Buckets(tx); return nil })
	if err := e.Update(func(tx ptm.Tx) error {
		for k := uint64(0); k < 500; k++ {
			if _, err := m.Put(tx, k, k*10); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.Read(func(tx ptm.Tx) error {
		if m.Buckets(tx) <= before {
			t.Errorf("buckets did not grow: %d -> %d", before, m.Buckets(tx))
		}
		for k := uint64(0); k < 500; k++ {
			if v, err := m.Get(tx, k); err != nil || v != k*10 {
				t.Fatalf("Get(%d) after resize = %d, %v", k, v, err)
			}
		}
		return nil
	})
}

func TestHashMapFixedValueSizes(t *testing.T) {
	e := romlog(t)
	var m *pstruct.HashMapFixed
	e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewHashMapFixed(tx, 0, 64)
		return err
	})
	for _, size := range []int{8, 64, 256, 1024} {
		val := bytes.Repeat([]byte{byte(size)}, size)
		if err := e.Update(func(tx ptm.Tx) error {
			_, err := m.Put(tx, uint64(size), val)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		e.Read(func(tx ptm.Tx) error {
			got, err := m.Get(tx, uint64(size), nil)
			if err != nil || !bytes.Equal(got, val) {
				t.Errorf("Get(%d): %v (len %d)", size, err, len(got))
			}
			return nil
		})
	}
	// Overwrite with smaller and larger values.
	e.Update(func(tx ptm.Tx) error {
		if _, err := m.Put(tx, 64, []byte("small")); err != nil {
			return err
		}
		_, err := m.Put(tx, 8, bytes.Repeat([]byte{9}, 100))
		return err
	})
	e.Read(func(tx ptm.Tx) error {
		got, _ := m.Get(tx, 64, nil)
		if string(got) != "small" {
			t.Errorf("shrunk value = %q", got)
		}
		got, _ = m.Get(tx, 8, nil)
		if len(got) != 100 || got[0] != 9 {
			t.Errorf("grown value wrong: len %d", len(got))
		}
		return nil
	})
	// Remove.
	e.Update(func(tx ptm.Tx) error {
		if rem, err := m.Remove(tx, 8); err != nil || !rem {
			t.Errorf("Remove = %v, %v", rem, err)
		}
		return nil
	})
	e.Read(func(tx ptm.Tx) error {
		if _, err := m.Get(tx, 8, nil); err != pstruct.ErrNotFound {
			t.Errorf("Get after remove = %v", err)
		}
		if m.Len(tx) != 3 {
			t.Errorf("Len = %d", m.Len(tx))
		}
		return nil
	})
}

func TestRBTreeModel(t *testing.T) {
	for name, e := range engines(t) {
		t.Run(name, func(t *testing.T) {
			var tree *pstruct.RBTree
			if err := e.Update(func(tx ptm.Tx) error {
				var err error
				tree, err = pstruct.NewRBTree(tx, 2)
				return err
			}); err != nil {
				t.Fatal(err)
			}
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 500; i++ {
				k := uint64(rng.Intn(120))
				if rng.Intn(3) != 2 {
					v := rng.Uint64()
					if err := e.Update(func(tx ptm.Tx) error {
						added, err := tree.Put(tx, k, v)
						if err != nil {
							return err
						}
						_, existed := model[k]
						if added == existed {
							return fmt.Errorf("Put(%d) added=%v existed=%v", k, added, existed)
						}
						if !tree.CheckInvariants(tx) {
							return fmt.Errorf("red-black invariants violated after Put(%d)", k)
						}
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				} else {
					if err := e.Update(func(tx ptm.Tx) error {
						removed, err := tree.Remove(tx, k)
						if err != nil {
							return err
						}
						_, existed := model[k]
						if removed != existed {
							return fmt.Errorf("Remove(%d) removed=%v existed=%v", k, removed, existed)
						}
						if !tree.CheckInvariants(tx) {
							return fmt.Errorf("red-black invariants violated after Remove(%d)", k)
						}
						return nil
					}); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				}
			}
			e.Read(func(tx ptm.Tx) error {
				if tree.Len(tx) != len(model) {
					t.Errorf("Len = %d, model %d", tree.Len(tx), len(model))
				}
				for k, v := range model {
					if got, err := tree.Get(tx, k); err != nil || got != v {
						t.Errorf("Get(%d) = %d, %v", k, got, err)
					}
				}
				// Range must be sorted and complete.
				var keys []uint64
				tree.Range(tx, func(k, v uint64) bool {
					keys = append(keys, k)
					return true
				})
				if len(keys) != len(model) {
					t.Errorf("Range visited %d keys, want %d", len(keys), len(model))
				}
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Error("Range not in sorted order")
				}
				return nil
			})
		})
	}
}

func TestByteMapModel(t *testing.T) {
	e := romlog(t)
	var m *pstruct.ByteMap
	e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewByteMap(tx, 0, 0)
		return err
	})
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(3))
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
	for i := 0; i < 800; i++ {
		k := key(rng.Intn(150))
		switch rng.Intn(4) {
		case 0, 1, 2:
			val := make([]byte, rng.Intn(120))
			rng.Read(val)
			if err := e.Update(func(tx ptm.Tx) error {
				added, err := m.Put(tx, k, val)
				if err != nil {
					return err
				}
				_, existed := model[string(k)]
				if added == existed {
					return fmt.Errorf("Put(%s) added=%v existed=%v", k, added, existed)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = val
		case 3:
			if err := e.Update(func(tx ptm.Tx) error {
				deleted, err := m.Delete(tx, k)
				if err != nil {
					return err
				}
				_, existed := model[string(k)]
				if deleted != existed {
					return fmt.Errorf("Delete(%s) deleted=%v existed=%v", k, deleted, existed)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			delete(model, string(k))
		}
	}
	e.Read(func(tx ptm.Tx) error {
		if m.Len(tx) != len(model) {
			t.Errorf("Len = %d, model %d", m.Len(tx), len(model))
		}
		for k, v := range model {
			got, err := m.Get(tx, []byte(k), nil)
			if err != nil || !bytes.Equal(got, v) {
				t.Errorf("Get(%s) = %v, %v", k, got, err)
			}
		}
		// Forward and reverse ranges visit everything, in opposite orders.
		var fwd, rev []string
		m.Range(tx, false, func(k, v []byte) bool {
			if !bytes.Equal(model[string(k)], v) {
				t.Errorf("Range value mismatch for %s", k)
			}
			fwd = append(fwd, string(k))
			return true
		})
		m.Range(tx, true, func(k, v []byte) bool {
			rev = append(rev, string(k))
			return true
		})
		if len(fwd) != len(model) || len(rev) != len(model) {
			t.Errorf("ranges visited %d/%d, want %d", len(fwd), len(rev), len(model))
		}
		return nil
	})
}

func TestByteMapEmptyKeyAndValue(t *testing.T) {
	e := romlog(t)
	var m *pstruct.ByteMap
	e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewByteMap(tx, 0, 0)
		if err != nil {
			return err
		}
		if _, err := m.Put(tx, []byte{}, []byte{}); err != nil {
			return err
		}
		if _, err := m.Put(tx, []byte("k"), nil); err != nil {
			return err
		}
		return nil
	})
	e.Read(func(tx ptm.Tx) error {
		got, err := m.Get(tx, []byte{}, nil)
		if err != nil || len(got) != 0 {
			t.Errorf("empty key: %v, %v", got, err)
		}
		got, err = m.Get(tx, []byte("k"), nil)
		if err != nil || len(got) != 0 {
			t.Errorf("nil value: %v, %v", got, err)
		}
		return nil
	})
}

func TestRangeEarlyStop(t *testing.T) {
	e := romlog(t)
	var m *pstruct.HashMap
	var tree *pstruct.RBTree
	e.Update(func(tx ptm.Tx) error {
		var err error
		m, err = pstruct.NewHashMap(tx, 0)
		if err != nil {
			return err
		}
		tree, err = pstruct.NewRBTree(tx, 1)
		if err != nil {
			return err
		}
		for k := uint64(0); k < 50; k++ {
			if _, err := m.Put(tx, k, k); err != nil {
				return err
			}
			if _, err := tree.Put(tx, k, k); err != nil {
				return err
			}
		}
		return nil
	})
	e.Read(func(tx ptm.Tx) error {
		n := 0
		m.Range(tx, func(k, v uint64) bool { n++; return n < 5 })
		if n != 5 {
			t.Errorf("hash map Range visited %d after early stop", n)
		}
		n = 0
		tree.Range(tx, func(k, v uint64) bool { n++; return n < 5 })
		if n != 5 {
			t.Errorf("tree Range visited %d after early stop", n)
		}
		return nil
	})
}

// Structures must survive a crash+recovery and still satisfy their
// invariants (spot check with the tree, the most delicate structure).
func TestStructuresSurviveCrash(t *testing.T) {
	e, err := core.New(1<<21, core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	var tree *pstruct.RBTree
	e.Update(func(tx ptm.Tx) error {
		var err error
		tree, err = pstruct.NewRBTree(tx, 0)
		return err
	})
	for k := uint64(0); k < 200; k++ {
		e.Update(func(tx ptm.Tx) error {
			_, err := tree.Put(tx, k, k^0xFF)
			return err
		})
	}
	// Crash mid-transaction.
	dev := e.Device()
	var img []byte
	dev.SetHooks(&pmem.Hooks{Pwb: func(n uint64) {
		if img == nil && n > 5 {
			img = dev.CrashImage(crashKeepQueued())
		}
	}})
	e.Update(func(tx ptm.Tx) error {
		for k := uint64(200); k < 230; k++ {
			if _, err := tree.Put(tx, k, 1); err != nil {
				return err
			}
		}
		return nil
	})
	dev.SetHooks(nil)
	if img == nil {
		t.Fatal("no crash image")
	}
	re, err := core.Open(deviceFromImage(img), core.Config{Variant: core.RomLog})
	if err != nil {
		t.Fatal(err)
	}
	tree2 := pstruct.AttachRBTree(0)
	re.Read(func(tx ptm.Tx) error {
		if !tree2.CheckInvariants(tx) {
			t.Error("tree invariants violated after crash recovery")
		}
		if got := tree2.Len(tx); got != 200 {
			t.Errorf("Len after rollback = %d, want 200", got)
		}
		for k := uint64(0); k < 200; k++ {
			if v, err := tree2.Get(tx, k); err != nil || v != k^0xFF {
				t.Fatalf("Get(%d) = %d, %v", k, v, err)
			}
		}
		return nil
	})
}
