package pstruct

import "repro/internal/ptm"

// HashMapFixed is the statically-dimensioned hash map built for Figure 5 of
// the paper: a fixed number of buckets (2,048 in the paper's experiment),
// no shared size counter on the hot path beyond an informational one, and
// byte-slice values of configurable size — the value-size sweep (8 B to
// 1,024 B) is the experiment's x-axis.
//
// Map object layout (24 bytes): +0 buckets ptr, +8 bucket count, +16 size.
// Node layout: +0 key, +8 next, +16 value length, +24 value bytes (inline).
type HashMapFixed struct {
	root int
}

const (
	hfBuckets = 0
	hfNBkts   = 8
	hfSize    = 16

	hfNodeKey    = 0
	hfNodeNext   = 8
	hfNodeValLen = 16
	hfNodeVal    = 24
)

// NewHashMapFixed creates a fixed map with the given bucket count under the
// root index if absent.
func NewHashMapFixed(tx ptm.Tx, root, buckets int) (*HashMapFixed, error) {
	if !tx.Root(root).IsNil() {
		return &HashMapFixed{root: root}, nil
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	bkts, err := tx.Alloc(buckets * 8)
	if err != nil {
		return nil, err
	}
	setField(tx, obj, hfBuckets, bkts)
	tx.Store64(obj+hfNBkts, uint64(buckets))
	tx.SetRoot(root, obj)
	return &HashMapFixed{root: root}, nil
}

// AttachHashMapFixed returns a handle to an existing fixed map.
func AttachHashMapFixed(root int) *HashMapFixed { return &HashMapFixed{root: root} }

func (m *HashMapFixed) slot(tx ptm.Tx, obj ptm.Ptr, key uint64) ptm.Ptr {
	n := tx.Load64(obj + hfNBkts)
	return field(tx, obj, hfBuckets) + ptm.Ptr(hash64(key)%n*8)
}

func (m *HashMapFixed) findNode(tx ptm.Tx, obj ptm.Ptr, key uint64) (node, prev ptm.Ptr) {
	slot := m.slot(tx, obj, key)
	prev = 0
	for n := ptm.Ptr(tx.Load64(slot)); !n.IsNil(); n = field(tx, n, hfNodeNext) {
		if tx.Load64(n+hfNodeKey) == key {
			return n, prev
		}
		prev = n
	}
	return 0, prev
}

// Get copies the value for key into dst (allocating if dst is short) and
// returns it, or ErrNotFound.
func (m *HashMapFixed) Get(tx ptm.Tx, key uint64, dst []byte) ([]byte, error) {
	obj := tx.Root(m.root)
	n, _ := m.findNode(tx, obj, key)
	if n.IsNil() {
		return nil, ErrNotFound
	}
	vl := int(tx.Load64(n + hfNodeValLen))
	if cap(dst) < vl {
		dst = make([]byte, vl)
	}
	dst = dst[:vl]
	tx.LoadBytes(n+hfNodeVal, dst)
	return dst, nil
}

// Put inserts or replaces key's value, reporting whether key was absent.
// Replacement reuses the node when the new value fits its allocation.
func (m *HashMapFixed) Put(tx ptm.Tx, key uint64, val []byte) (bool, error) {
	obj := tx.Root(m.root)
	n, _ := m.findNode(tx, obj, key)
	if !n.IsNil() {
		if int(tx.Load64(n+hfNodeValLen)) >= len(val) {
			tx.Store64(n+hfNodeValLen, uint64(len(val)))
			tx.StoreBytes(n+hfNodeVal, val)
			return false, nil
		}
		if _, err := m.removeNode(tx, obj, key); err != nil {
			return false, err
		}
	}
	node, err := tx.Alloc(hfNodeVal + len(val))
	if err != nil {
		return false, err
	}
	tx.Store64(node+hfNodeKey, key)
	tx.Store64(node+hfNodeValLen, uint64(len(val)))
	tx.StoreBytes(node+hfNodeVal, val)
	slot := m.slot(tx, obj, key)
	tx.Store64(node+hfNodeNext, tx.Load64(slot))
	tx.Store64(slot, uint64(node))
	tx.Store64(obj+hfSize, tx.Load64(obj+hfSize)+1)
	return n.IsNil(), nil
}

// Remove deletes key, reporting whether it was present.
func (m *HashMapFixed) Remove(tx ptm.Tx, key uint64) (bool, error) {
	obj := tx.Root(m.root)
	return m.removeNode(tx, obj, key)
}

func (m *HashMapFixed) removeNode(tx ptm.Tx, obj ptm.Ptr, key uint64) (bool, error) {
	n, prev := m.findNode(tx, obj, key)
	if n.IsNil() {
		return false, nil
	}
	next := tx.Load64(n + hfNodeNext)
	if prev.IsNil() {
		tx.Store64(m.slot(tx, obj, key), next)
	} else {
		tx.Store64(prev+hfNodeNext, next)
	}
	tx.Store64(obj+hfSize, tx.Load64(obj+hfSize)-1)
	return true, tx.Free(n)
}

// Len returns the number of entries.
func (m *HashMapFixed) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(m.root) + hfSize))
}
