package pstruct

import "repro/internal/ptm"

// Queue is a persistent FIFO queue of uint64 values — not part of the
// paper's benchmark set, but the natural first structure a PTM user builds
// and a useful smoke test for pointer-heavy churn (every operation
// allocates or frees).
//
// Queue object layout (24 bytes): +0 head, +8 tail, +16 length.
// Node layout (16 bytes): +0 value, +8 next.
type Queue struct {
	root int
}

const (
	qHead = 0
	qTail = 8
	qLen  = 16

	qNodeVal  = 0
	qNodeNext = 8
	qNodeSize = 16
)

// NewQueue creates a queue under the root index if absent.
func NewQueue(tx ptm.Tx, root int) (*Queue, error) {
	if !tx.Root(root).IsNil() {
		return &Queue{root: root}, nil
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	tx.SetRoot(root, obj)
	return &Queue{root: root}, nil
}

// AttachQueue returns a handle to an existing queue.
func AttachQueue(root int) *Queue { return &Queue{root: root} }

// Enqueue appends v at the tail.
func (q *Queue) Enqueue(tx ptm.Tx, v uint64) error {
	obj := tx.Root(q.root)
	n, err := tx.Alloc(qNodeSize)
	if err != nil {
		return err
	}
	tx.Store64(n+qNodeVal, v)
	tail := field(tx, obj, qTail)
	if tail.IsNil() {
		setField(tx, obj, qHead, n)
	} else {
		setField(tx, tail, qNodeNext, n)
	}
	setField(tx, obj, qTail, n)
	tx.Store64(obj+qLen, tx.Load64(obj+qLen)+1)
	return nil
}

// Dequeue removes and returns the head value; ok is false when empty.
func (q *Queue) Dequeue(tx ptm.Tx) (v uint64, ok bool, err error) {
	obj := tx.Root(q.root)
	head := field(tx, obj, qHead)
	if head.IsNil() {
		return 0, false, nil
	}
	v = tx.Load64(head + qNodeVal)
	next := field(tx, head, qNodeNext)
	setField(tx, obj, qHead, next)
	if next.IsNil() {
		setField(tx, obj, qTail, 0)
	}
	tx.Store64(obj+qLen, tx.Load64(obj+qLen)-1)
	if err := tx.Free(head); err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Peek returns the head value without removing it; ok is false when empty.
func (q *Queue) Peek(tx ptm.Tx) (v uint64, ok bool) {
	obj := tx.Root(q.root)
	head := field(tx, obj, qHead)
	if head.IsNil() {
		return 0, false
	}
	return tx.Load64(head + qNodeVal), true
}

// Len returns the number of queued values.
func (q *Queue) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(q.root) + qLen))
}
