package pstruct_test

import (
	"repro/internal/pmem"
)

func crashKeepQueued() pmem.CrashPolicy { return pmem.KeepQueued }

func deviceFromImage(img []byte) *pmem.Device {
	return pmem.FromImage(img, pmem.ModelDRAM)
}
