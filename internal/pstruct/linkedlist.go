package pstruct

import "repro/internal/ptm"

// LinkedListSet is the persistent sorted linked-list set of Algorithm 2 in
// the paper: a singly-linked list with head and tail sentinels, keys stored
// in ascending order.
//
// Layout of the set object (24 bytes):
//
//	+0 head node   +8 tail node   +16 size
//
// Node layout (16 bytes): +0 key, +8 next.
type LinkedListSet struct {
	root int
}

const (
	llsHead = 0
	llsTail = 8
	llsSize = 16

	llNodeKey  = 0
	llNodeNext = 8
	llNodeSize = 16
)

// NewLinkedListSet creates the set object under root index root if that
// root is nil, and returns a handle either way. Call inside an update
// transaction for creation; a handle to an existing set can also be
// obtained with AttachLinkedListSet.
func NewLinkedListSet(tx ptm.Tx, root int) (*LinkedListSet, error) {
	if !tx.Root(root).IsNil() {
		return &LinkedListSet{root: root}, nil
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	head, err := tx.Alloc(llNodeSize)
	if err != nil {
		return nil, err
	}
	tail, err := tx.Alloc(llNodeSize)
	if err != nil {
		return nil, err
	}
	tx.Store64(head+llNodeNext, uint64(tail))
	tx.Store64(tail+llNodeKey, ^uint64(0))
	setField(tx, obj, llsHead, head)
	setField(tx, obj, llsTail, tail)
	tx.SetRoot(root, obj)
	return &LinkedListSet{root: root}, nil
}

// AttachLinkedListSet returns a handle to a set previously created under
// the given root index.
func AttachLinkedListSet(root int) *LinkedListSet {
	return &LinkedListSet{root: root}
}

// find returns the first node with key >= k and its predecessor, exactly as
// Algorithm 2's find().
func (l *LinkedListSet) find(tx ptm.Tx, k uint64) (prev, node ptm.Ptr) {
	obj := tx.Root(l.root)
	tail := field(tx, obj, llsTail)
	prev = field(tx, obj, llsHead)
	for {
		node = field(tx, prev, llNodeNext)
		if node == tail || tx.Load64(node+llNodeKey) >= k {
			return prev, node
		}
		prev = node
	}
}

// Contains reports whether k is in the set. Read-only.
func (l *LinkedListSet) Contains(tx ptm.Tx, k uint64) bool {
	obj := tx.Root(l.root)
	tail := field(tx, obj, llsTail)
	_, node := l.find(tx, k)
	return node != tail && tx.Load64(node+llNodeKey) == k
}

// Add inserts k, reporting whether it was absent. Update transaction only.
func (l *LinkedListSet) Add(tx ptm.Tx, k uint64) (bool, error) {
	obj := tx.Root(l.root)
	tail := field(tx, obj, llsTail)
	prev, node := l.find(tx, k)
	if node != tail && tx.Load64(node+llNodeKey) == k {
		return false, nil
	}
	n, err := tx.Alloc(llNodeSize)
	if err != nil {
		return false, err
	}
	tx.Store64(n+llNodeKey, k)
	tx.Store64(n+llNodeNext, uint64(node))
	tx.Store64(prev+llNodeNext, uint64(n))
	tx.Store64(obj+llsSize, tx.Load64(obj+llsSize)+1)
	return true, nil
}

// Remove deletes k, reporting whether it was present. Update transaction
// only.
func (l *LinkedListSet) Remove(tx ptm.Tx, k uint64) (bool, error) {
	obj := tx.Root(l.root)
	tail := field(tx, obj, llsTail)
	prev, node := l.find(tx, k)
	if node == tail || tx.Load64(node+llNodeKey) != k {
		return false, nil
	}
	tx.Store64(prev+llNodeNext, tx.Load64(node+llNodeNext))
	tx.Store64(obj+llsSize, tx.Load64(obj+llsSize)-1)
	if err := tx.Free(node); err != nil {
		return false, err
	}
	return true, nil
}

// Len returns the number of keys.
func (l *LinkedListSet) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(l.root) + llsSize))
}

// Keys appends all keys in ascending order to dst and returns it.
func (l *LinkedListSet) Keys(tx ptm.Tx, dst []uint64) []uint64 {
	obj := tx.Root(l.root)
	tail := field(tx, obj, llsTail)
	for n := field(tx, field(tx, obj, llsHead), llNodeNext); n != tail; n = field(tx, n, llNodeNext) {
		dst = append(dst, tx.Load64(n+llNodeKey))
	}
	return dst
}
