package pstruct

import "repro/internal/ptm"

// ByteMap is a persistent resizable hash map from byte-string keys to
// byte-string values. It is the storage engine of RomulusDB (§6.4 of the
// paper wraps a hash map behind the LevelDB interface). Keys are stored
// inline in the node together with their hash (so rehashing never touches
// key bytes); values live in separate allocations because they are
// replaced frequently.
//
// Map object layout (24 bytes): +0 buckets ptr, +8 bucket count, +16 size.
// Node layout: +0 next, +8 hash, +16 key length, +24 value ptr,
// +32 value length, +40 key bytes (inline).
type ByteMap struct {
	root int
}

const (
	bmBuckets = 0
	bmNBkts   = 8
	bmSize    = 16

	bmNodeNext   = 0
	bmNodeHash   = 8
	bmNodeKeyLen = 16
	bmNodeValPtr = 24
	bmNodeValLen = 32
	bmNodeKey    = 40

	bmInitialBuckets = 64
	bmMaxLoad        = 2
)

// NewByteMap creates a map with at least minBuckets buckets (rounded up to
// a power of two; 0 means the default) under the root index if absent.
func NewByteMap(tx ptm.Tx, root, minBuckets int) (*ByteMap, error) {
	if !tx.Root(root).IsNil() {
		return &ByteMap{root: root}, nil
	}
	nb := bmInitialBuckets
	for nb < minBuckets {
		nb *= 2
	}
	obj, err := tx.Alloc(24)
	if err != nil {
		return nil, err
	}
	bkts, err := tx.Alloc(nb * 8)
	if err != nil {
		return nil, err
	}
	setField(tx, obj, bmBuckets, bkts)
	tx.Store64(obj+bmNBkts, uint64(nb))
	tx.SetRoot(root, obj)
	return &ByteMap{root: root}, nil
}

// AttachByteMap returns a handle to an existing map.
func AttachByteMap(root int) *ByteMap { return &ByteMap{root: root} }

// keyEquals compares the node's inline key with key.
func bmKeyEquals(tx ptm.Tx, n ptm.Ptr, h uint64, key []byte) bool {
	if tx.Load64(n+bmNodeHash) != h {
		return false
	}
	if int(tx.Load64(n+bmNodeKeyLen)) != len(key) {
		return false
	}
	var stack [64]byte
	var buf []byte
	if len(key) <= len(stack) {
		buf = stack[:len(key)]
	} else {
		buf = make([]byte, len(key))
	}
	tx.LoadBytes(n+bmNodeKey, buf)
	for i := range key {
		if buf[i] != key[i] {
			return false
		}
	}
	return true
}

func (m *ByteMap) findNode(tx ptm.Tx, obj ptm.Ptr, h uint64, key []byte) (node, prev, slot ptm.Ptr) {
	nb := tx.Load64(obj + bmNBkts)
	slot = field(tx, obj, bmBuckets) + ptm.Ptr(h%nb*8)
	for n := ptm.Ptr(tx.Load64(slot)); !n.IsNil(); n = field(tx, n, bmNodeNext) {
		if bmKeyEquals(tx, n, h, key) {
			return n, prev, slot
		}
		prev = n
	}
	return 0, prev, slot
}

// Get copies the value for key into dst (reallocating if needed) and
// returns it, or ErrNotFound.
func (m *ByteMap) Get(tx ptm.Tx, key, dst []byte) ([]byte, error) {
	obj := tx.Root(m.root)
	n, _, _ := m.findNode(tx, obj, hashBytes(key), key)
	if n.IsNil() {
		return nil, ErrNotFound
	}
	vl := int(tx.Load64(n + bmNodeValLen))
	if cap(dst) < vl {
		dst = make([]byte, vl)
	}
	dst = dst[:vl]
	if vl > 0 {
		tx.LoadBytes(field(tx, n, bmNodeValPtr), dst)
	}
	return dst, nil
}

// Has reports whether key is present.
func (m *ByteMap) Has(tx ptm.Tx, key []byte) bool {
	obj := tx.Root(m.root)
	n, _, _ := m.findNode(tx, obj, hashBytes(key), key)
	return !n.IsNil()
}

// Put inserts or replaces key's value, reporting whether the key was
// absent.
func (m *ByteMap) Put(tx ptm.Tx, key, val []byte) (bool, error) {
	obj := tx.Root(m.root)
	h := hashBytes(key)
	n, _, slot := m.findNode(tx, obj, h, key)
	if !n.IsNil() {
		return false, m.replaceValue(tx, n, val)
	}
	node, err := tx.Alloc(bmNodeKey + len(key))
	if err != nil {
		return false, err
	}
	tx.Store64(node+bmNodeHash, h)
	tx.Store64(node+bmNodeKeyLen, uint64(len(key)))
	if len(key) > 0 {
		tx.StoreBytes(node+bmNodeKey, key)
	}
	if err := m.replaceValue(tx, node, val); err != nil {
		return false, err
	}
	tx.Store64(node+bmNodeNext, tx.Load64(slot))
	tx.Store64(slot, uint64(node))
	size := tx.Load64(obj+bmSize) + 1
	tx.Store64(obj+bmSize, size)
	if size > bmMaxLoad*tx.Load64(obj+bmNBkts) {
		if err := m.resize(tx, obj); err != nil {
			return false, err
		}
	}
	return true, nil
}

// replaceValue swaps in a new value blob, reusing the old allocation when
// it is large enough.
func (m *ByteMap) replaceValue(tx ptm.Tx, n ptm.Ptr, val []byte) error {
	old := field(tx, n, bmNodeValPtr)
	oldLen := int(tx.Load64(n + bmNodeValLen))
	if !old.IsNil() && oldLen >= len(val) {
		tx.Store64(n+bmNodeValLen, uint64(len(val)))
		if len(val) > 0 {
			tx.StoreBytes(old, val)
		}
		return nil
	}
	var blob ptm.Ptr
	if len(val) > 0 {
		var err error
		blob, err = tx.Alloc(len(val))
		if err != nil {
			return err
		}
		tx.StoreBytes(blob, val)
	}
	if !old.IsNil() {
		if err := tx.Free(old); err != nil {
			return err
		}
	}
	setField(tx, n, bmNodeValPtr, blob)
	tx.Store64(n+bmNodeValLen, uint64(len(val)))
	return nil
}

// Delete removes key, reporting whether it was present.
func (m *ByteMap) Delete(tx ptm.Tx, key []byte) (bool, error) {
	obj := tx.Root(m.root)
	n, prev, slot := m.findNode(tx, obj, hashBytes(key), key)
	if n.IsNil() {
		return false, nil
	}
	next := tx.Load64(n + bmNodeNext)
	if prev.IsNil() {
		tx.Store64(slot, next)
	} else {
		tx.Store64(prev+bmNodeNext, next)
	}
	tx.Store64(obj+bmSize, tx.Load64(obj+bmSize)-1)
	if v := field(tx, n, bmNodeValPtr); !v.IsNil() {
		if err := tx.Free(v); err != nil {
			return true, err
		}
	}
	return true, tx.Free(n)
}

// resize doubles the bucket array, rehashing via stored hashes (no key
// bytes are read).
func (m *ByteMap) resize(tx ptm.Tx, obj ptm.Ptr) error {
	oldN := tx.Load64(obj + bmNBkts)
	oldB := field(tx, obj, bmBuckets)
	newN := oldN * 2
	newB, err := tx.Alloc(int(newN * 8))
	if err != nil {
		if err == ptm.ErrOutOfMemory {
			return nil // keep the old table; chains grow
		}
		return err
	}
	for i := uint64(0); i < oldN; i++ {
		n := ptm.Ptr(tx.Load64(oldB + ptm.Ptr(i*8)))
		for !n.IsNil() {
			next := field(tx, n, bmNodeNext)
			slot := newB + ptm.Ptr(tx.Load64(n+bmNodeHash)%newN*8)
			tx.Store64(n+bmNodeNext, tx.Load64(slot))
			tx.Store64(slot, uint64(n))
			n = next
		}
	}
	setField(tx, obj, bmBuckets, newB)
	tx.Store64(obj+bmNBkts, newN)
	return tx.Free(oldB)
}

// Len returns the number of entries.
func (m *ByteMap) Len(tx ptm.Tx) int {
	return int(tx.Load64(tx.Root(m.root) + bmSize))
}

// Range calls fn with copies of every (key, value) pair in bucket order
// (forward when reverse is false, backward otherwise) until fn returns
// false. Hash order is arbitrary but stable between calls, which is all
// the RomulusDB iterators need (§6.4: traversal order has no extra cost on
// a hash map).
func (m *ByteMap) Range(tx ptm.Tx, reverse bool, fn func(key, val []byte) bool) {
	obj := tx.Root(m.root)
	nb := int(tx.Load64(obj + bmNBkts))
	bkts := field(tx, obj, bmBuckets)
	visit := func(i int) bool {
		for n := ptm.Ptr(tx.Load64(bkts + ptm.Ptr(i*8))); !n.IsNil(); n = field(tx, n, bmNodeNext) {
			kl := int(tx.Load64(n + bmNodeKeyLen))
			vl := int(tx.Load64(n + bmNodeValLen))
			key := make([]byte, kl)
			tx.LoadBytes(n+bmNodeKey, key)
			val := make([]byte, vl)
			if vl > 0 {
				tx.LoadBytes(field(tx, n, bmNodeValPtr), val)
			}
			if !fn(key, val) {
				return false
			}
		}
		return true
	}
	if reverse {
		for i := nb - 1; i >= 0; i-- {
			if !visit(i) {
				return
			}
		}
	} else {
		for i := 0; i < nb; i++ {
			if !visit(i) {
				return
			}
		}
	}
}
