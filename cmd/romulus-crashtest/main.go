// Command romulus-crashtest runs randomized crash-recovery torture
// campaigns: random transactions on a persistent hash map, a simulated
// power failure at a random persistence event under a random adversary
// policy (unfenced lines dropped, kept, torn at word granularity, dirty
// lines randomly evicted), recovery, and validation that the recovered
// state matches exactly the pre- or post-crash model.
//
//	romulus-crashtest -rounds 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/crashtest"
)

func main() {
	rounds := flag.Int("rounds", 1000, "crash/recover cycles to run")
	seed := flag.Int64("seed", time.Now().UnixNano(), "campaign seed (printed for reproduction)")
	keys := flag.Int("keys", 64, "keyspace size")
	txs := flag.Int("txs", 20, "max committed transactions before each crash")
	flag.Parse()

	fmt.Printf("romulus-crashtest: %d rounds, seed %d\n", *rounds, *seed)
	rep, err := crashtest.Run(crashtest.Config{
		Rounds:     *rounds,
		Seed:       *seed,
		Keys:       *keys,
		TxPerRound: *txs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE after %d rounds: %v\n", rep.Rounds, err)
		os.Exit(1)
	}
	fmt.Printf("OK: %d rounds — %d crashed mid-transaction (%d rolled back, %d carried forward)\n",
		rep.Rounds, rep.CrashedMidTx, rep.RolledBack, rep.CarriedForward)
}
