// Command romulus-crashtest runs randomized crash-chain torture campaigns
// against every engine: concurrent random transactions on a persistent map,
// a simulated power failure at a random persistence event under a random
// adversary policy (unfenced lines dropped, kept, torn at word granularity,
// dirty lines randomly evicted), then recovery that is itself crashed again
// up to -chain times, and validation that each worker's recovered keys match
// a durable prefix of its committed transactions.
//
//	romulus-crashtest -rounds 2000 -chain 3 -engines all -threads 4
//
// Failures print a JSON record with the campaign seed, round seed, thread
// count and full crash chain; re-running with the same -seed, -threads 1 and
// the same flags reproduces any single-threaded round exactly.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/crashtest"
	"repro/internal/obs"
)

// runBatchCampaign executes the combined-batch campaign and prints its
// reports (text or JSON), exiting non-zero on a safety failure. The map
// workload flags (-keys, -trace, -metrics) do not apply here.
func runBatchCampaign(cfg crashtest.BatchConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -batch: %d rounds/variant, seed %d, %d threads, chain depth %d\n",
			cfg.Rounds, cfg.Seed, cfg.Threads, cfg.ChainDepth)
	}
	reports, err := crashtest.RunBatch(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                   `json:"seed"`
			Reports []crashtest.BatchReport `json:"reports"`
			Failure *crashtest.Failure      `json:"failure,omitempty"`
			Error   string                  `json:"error,omitempty"`
		}{Seed: cfg.Seed, Reports: reports}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	for _, r := range reports {
		fmt.Printf("%-8s %6d rounds, %d threads — %d mid-batch crashes, %d multi-op rounds, "+
			"%d chain crashes (%d inside recovery), ops: %d survived / %d lost\n",
			r.Engine, r.Rounds, r.Threads, r.MidBatchCrashes, r.MultiOpRounds,
			r.ChainCrashes, r.RecoveryCrashes, r.OpsSurvived, r.OpsLost)
		if cfg.Audit {
			fmt.Printf("         audit: %d violations\n", r.AuditViolations)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// runReplicateCampaign executes the mid-replicate campaign and prints its
// reports (text or JSON), exiting non-zero on a safety failure. The map
// workload flags (-keys, -trace, -metrics) do not apply here.
func runReplicateCampaign(cfg crashtest.ReplicateConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -replicate: %d rounds/variant, seed %d, %d threads, chain depth %d\n",
			cfg.Rounds, cfg.Seed, cfg.Threads, cfg.ChainDepth)
	}
	reports, err := crashtest.RunReplicate(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                       `json:"seed"`
			Reports []crashtest.ReplicateReport `json:"reports"`
			Failure *crashtest.Failure          `json:"failure,omitempty"`
			Error   string                      `json:"error,omitempty"`
		}{Seed: cfg.Seed, Reports: reports}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	for _, r := range reports {
		fmt.Printf("%-8s %6d rounds, %d threads — %d mid-round crashes (%d mid-replicate), "+
			"%d chain crashes (%d inside recovery), ops: %d survived / %d lost\n",
			r.Engine, r.Rounds, r.Threads, r.MidRoundCrashes, r.MidReplicateCrashes,
			r.ChainCrashes, r.RecoveryCrashes, r.OpsSurvived, r.OpsLost)
		if cfg.Audit {
			fmt.Printf("         audit: %d violations\n", r.AuditViolations)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// runFaultCampaign executes the media-fault campaign and prints its reports
// (text or JSON), exiting non-zero on a safety failure. Rounds are
// single-threaded, so the -threads and -chain flags do not apply.
func runFaultCampaign(cfg crashtest.FaultConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -faults: %d rounds/engine, seed %d\n", cfg.Rounds, cfg.Seed)
	}
	reports, err := crashtest.RunFaults(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                   `json:"seed"`
			Reports []crashtest.FaultReport `json:"reports"`
			Metrics *obs.Snapshot           `json:"metrics,omitempty"`
			Failure *crashtest.Failure      `json:"failure,omitempty"`
			Error   string                  `json:"error,omitempty"`
		}{Seed: cfg.Seed, Reports: reports}
		if cfg.Metrics != nil {
			snap := cfg.Metrics.Snapshot()
			out.Metrics = &snap
		}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	for _, r := range reports {
		fmt.Printf("%-8s %6d rounds — %d torn crashes, rot: %d detected / %d benign, "+
			"%d media trips, %d transient retries\n",
			r.Engine, r.Rounds, r.TornCrashes, r.RotDetected, r.RotBenign,
			r.MediaTrips, r.TransientRetries)
		if cfg.Audit {
			fmt.Printf("         audit: %d violations\n", r.AuditViolations)
		}
	}
	if cfg.Metrics != nil {
		fmt.Println("# campaign totals")
		cfg.Metrics.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// runGroupCampaign executes the network group-commit campaign and prints its
// reports (text or JSON), exiting non-zero on a safety failure. -threads
// maps to simulated connections; the map workload flags (-keys, -trace) do
// not apply.
func runGroupCampaign(cfg crashtest.GroupConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -group: %d rounds/variant, seed %d, %d connections, chain depth %d\n",
			cfg.Rounds, cfg.Seed, cfg.Conns, cfg.ChainDepth)
	}
	reports, err := crashtest.RunGroup(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                   `json:"seed"`
			Reports []crashtest.GroupReport `json:"reports"`
			Metrics *obs.Snapshot           `json:"metrics,omitempty"`
			Failure *crashtest.Failure      `json:"failure,omitempty"`
			Error   string                  `json:"error,omitempty"`
		}{Seed: cfg.Seed, Reports: reports}
		if cfg.Metrics != nil {
			snap := cfg.Metrics.Snapshot()
			out.Metrics = &snap
		}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	for _, r := range reports {
		fmt.Printf("%-8s %6d rounds, %d conns — %d mid-round crashes, %d batches (%d multi-conn), "+
			"%d chain crashes (%d inside recovery), acks: %d survived / %d lost, "+
			"flight: %d rounds (%d with in-flight batches)\n",
			r.Engine, r.Rounds, r.Conns, r.MidRoundCrashes, r.Batches, r.MultiConnBatches,
			r.ChainCrashes, r.RecoveryCrashes, r.AcksSurvived, r.AcksLost,
			r.FlightRounds, r.FlightInFlight)
		if cfg.Audit {
			fmt.Printf("         audit: %d violations\n", r.AuditViolations)
		}
	}
	if cfg.Metrics != nil {
		fmt.Println("# campaign totals")
		cfg.Metrics.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// runXShardCampaign executes the cross-shard campaign and prints its report
// (text or JSON), exiting non-zero on a safety failure. The per-engine flags
// (-engines, -threads, -trace) do not apply: the store is always the sharded
// RomulusDB composition and the workload is single-threaded so that the
// multi-device crash captures are consistent.
func runXShardCampaign(cfg crashtest.XShardConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -xshard: %d rounds, seed %d, %d shards, chain depth %d\n",
			cfg.Rounds, cfg.Seed, cfg.Shards, cfg.ChainDepth)
	}
	rep, err := crashtest.RunXShard(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                  `json:"seed"`
			XShard  crashtest.XShardReport `json:"xshard"`
			Metrics *obs.Snapshot          `json:"metrics,omitempty"`
			Failure *crashtest.Failure     `json:"failure,omitempty"`
			Error   string                 `json:"error,omitempty"`
		}{Seed: cfg.Seed, XShard: rep}
		if cfg.Metrics != nil {
			snap := cfg.Metrics.Snapshot()
			out.Metrics = &snap
		}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("xshard   %6d rounds, %d shards — %d mid-op crashes, %d cross-shard batches, "+
		"%d chain crashes (%d inside recovery), in-doubt: %d replayed / %d rolled back, "+
		"rounds: %d rolled back / %d carried forward\n",
		rep.Rounds, rep.Shards, rep.MidOpCrashes, rep.XBatches,
		rep.ChainCrashes, rep.RecoveryCrashes, rep.Replays, rep.Rollbacks,
		rep.RolledBack, rep.CarriedForward)
	if cfg.Audit {
		fmt.Printf("         audit: %d violations\n", rep.AuditViolations)
	}
	if cfg.Metrics != nil {
		fmt.Println("# campaign totals")
		cfg.Metrics.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

// runMigrateCampaign executes the mid-migration campaign and prints its
// report (text or JSON), exiting non-zero on a safety failure. Like
// -xshard, the store is always the sharded composition and the workload is
// single-threaded for consistent multi-device captures.
func runMigrateCampaign(cfg crashtest.MigrateConfig, jsonOut bool) {
	if !jsonOut {
		fmt.Printf("romulus-crashtest -migrate: %d rounds, seed %d, %d shards pre-split, chain depth %d\n",
			cfg.Rounds, cfg.Seed, cfg.Shards, cfg.ChainDepth)
	}
	rep, err := crashtest.RunMigrate(cfg)
	if jsonOut {
		out := struct {
			Seed    int64                   `json:"seed"`
			Migrate crashtest.MigrateReport `json:"migrate"`
			Metrics *obs.Snapshot           `json:"metrics,omitempty"`
			Failure *crashtest.Failure      `json:"failure,omitempty"`
			Error   string                  `json:"error,omitempty"`
		}{Seed: cfg.Seed, Migrate: rep}
		if cfg.Metrics != nil {
			snap := cfg.Metrics.Snapshot()
			out.Metrics = &snap
		}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("migrate  %6d rounds, %d shards pre-split — %d mid-op crashes, "+
		"journal at crash: %d copy / %d cleanup / %d closed, "+
		"%d chain crashes (%d inside recovery), rounds: %d rolled back / %d carried forward\n",
		rep.Rounds, rep.Shards, rep.MidOpCrashes,
		rep.CopyCrashes, rep.CleanupCrashes, rep.CompleteCrashes,
		rep.ChainCrashes, rep.RecoveryCrashes, rep.RolledBack, rep.CarriedForward)
	if cfg.Audit {
		fmt.Printf("         audit: %d violations\n", rep.AuditViolations)
	}
	if cfg.Metrics != nil {
		fmt.Println("# campaign totals")
		cfg.Metrics.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}

func main() {
	rounds := flag.Int("rounds", 1000, "crash/recover cycles per engine")
	seed := flag.Int64("seed", time.Now().UnixNano(), "campaign seed (printed for reproduction)")
	keys := flag.Int("keys", 64, "keyspace size")
	txs := flag.Int("txs", 12, "max committed transactions per worker before each crash")
	threads := flag.Int("threads", 2, "workload goroutines (engines that cannot share the device use 1)")
	chain := flag.Int("chain", 1, "max crashes per round; beyond 1, later crashes land inside recovery")
	engines := flag.String("engines", "all", "comma-separated engine list: "+
		strings.Join(crashtest.EngineNames(), ",")+" (or all)")
	audit := flag.Bool("audit", false, "chain the durability auditor in front of the crash scheduler; any dirty or unfenced line at a commit marker, crash loss of a durably-claimed line, or unflushed line at close fails the round")
	batch := flag.Bool("batch", false, "run the combined-batch campaign instead: concurrent batched writers ("+
		strings.Join(crashtest.BatchEngineNames(), ",")+" only), crashes aimed inside combined durability rounds, all-or-nothing batch visibility asserted after recovery")
	xshard := flag.Bool("xshard", false, "run the cross-shard campaign instead: a sharded store (-shards devices plus a coordinator log), whole-process crash images captured consistently across every device, two-phase cross-shard batches asserted all-or-nothing after recovery")
	faults := flag.Bool("faults", false, "run the media-fault campaign instead: each round chains a torn-write crash, post-crash bit rot, and sticky/transient media faults through recovery, asserting damage is always reported typed and never served as good data")
	group := flag.Bool("group", false, "run the network group-commit campaign instead: concurrent pipelined connections funneling writes through the server's per-shard group committer ("+
		strings.Join(crashtest.GroupEngineNames(), ",")+" only), crashes aimed inside shared durability rounds, every acknowledged write asserted durable and every batch all-or-nothing after recovery")
	replicate := flag.Bool("replicate", false, "run the mid-replicate campaign instead: sparse scattered-store workers ("+
		strings.Join(crashtest.ReplicateEngineNames(), ",")+" only), crashes armed a few persistence events past a random commit's durable point so they land inside dirty-range (or full-copy) replication, recovered lanes validated against an operation-prefix replay")
	migrateF := flag.Bool("migrate", false, "run the mid-migration campaign instead: an online shard split (copy/cutover/cleanup against the durable placement journal) interleaved with a workload, whole-process crash images captured consistently across every device, recovery asserted to land on a committed prefix with exactly one owner per key")
	shards := flag.Int("shards", 3, "shard count for the -xshard campaign (pre-split count for -migrate, default 2 there)")
	jsonOut := flag.Bool("json", false, "emit reports (and any failure) as JSON")
	metrics := flag.Bool("metrics", false, "print campaign totals (pmem_* and crash_* counters) after the reports")
	trace := flag.String("trace", "", "write the workload transaction trace (JSON lines) to this file, or - for stdout")
	traceCap := flag.Int("tracecap", 4096, "trailing trace events retained with -trace")
	flag.Parse()

	if *faults {
		fcfg := crashtest.FaultConfig{
			Rounds:     *rounds,
			Seed:       *seed,
			Keys:       *keys,
			TxPerRound: *txs,
			Engines:    strings.Split(*engines, ","),
			Audit:      *audit,
		}
		if *metrics {
			fcfg.Metrics = obs.NewRegistry()
		}
		runFaultCampaign(fcfg, *jsonOut)
		return
	}
	if *group {
		gcfg := crashtest.GroupConfig{
			Rounds:     *rounds,
			Seed:       *seed,
			Conns:      *threads,
			OpsPerConn: *txs,
			ChainDepth: *chain,
			Engines:    strings.Split(*engines, ","),
			Audit:      *audit,
		}
		if *metrics {
			gcfg.Metrics = obs.NewRegistry()
		}
		runGroupCampaign(gcfg, *jsonOut)
		return
	}
	if *migrateF {
		n := 2
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				n = *shards
			}
		})
		mcfg := crashtest.MigrateConfig{
			Rounds:      *rounds,
			Seed:        *seed,
			Shards:      n,
			Keys:        *keys,
			OpsPerRound: *txs,
			ChainDepth:  *chain,
			Audit:       *audit,
		}
		if *metrics {
			mcfg.Metrics = obs.NewRegistry()
		}
		runMigrateCampaign(mcfg, *jsonOut)
		return
	}
	if *xshard {
		xcfg := crashtest.XShardConfig{
			Rounds:      *rounds,
			Seed:        *seed,
			Shards:      *shards,
			Keys:        *keys,
			OpsPerRound: *txs,
			ChainDepth:  *chain,
			Audit:       *audit,
		}
		if *metrics {
			xcfg.Metrics = obs.NewRegistry()
		}
		runXShardCampaign(xcfg, *jsonOut)
		return
	}
	if *replicate {
		runReplicateCampaign(crashtest.ReplicateConfig{
			Rounds:       *rounds,
			Seed:         *seed,
			Threads:      *threads,
			OpsPerWorker: *txs,
			ChainDepth:   *chain,
			Engines:      strings.Split(*engines, ","),
			Audit:        *audit,
		}, *jsonOut)
		return
	}
	if *batch {
		runBatchCampaign(crashtest.BatchConfig{
			Rounds:       *rounds,
			Seed:         *seed,
			Threads:      *threads,
			OpsPerWorker: *txs,
			ChainDepth:   *chain,
			Engines:      strings.Split(*engines, ","),
			Audit:        *audit,
		}, *jsonOut)
		return
	}
	cfg := crashtest.Config{
		Rounds:     *rounds,
		Seed:       *seed,
		Keys:       *keys,
		TxPerRound: *txs,
		Threads:    *threads,
		ChainDepth: *chain,
		Engines:    strings.Split(*engines, ","),
		Audit:      *audit,
	}
	if *metrics {
		cfg.Metrics = obs.NewRegistry()
	}
	var ring *obs.RingSink
	var traceOut *os.File
	if *trace != "" {
		ring = obs.NewRingSink(*traceCap)
		cfg.Trace = ring
		if *trace == "-" {
			traceOut = os.Stdout
		} else {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintln(os.Stderr, "romulus-crashtest:", err)
				os.Exit(1)
			}
			defer f.Close()
			traceOut = f
		}
	}
	if !*jsonOut {
		fmt.Printf("romulus-crashtest: %d rounds/engine, seed %d, %d threads, chain depth %d\n",
			*rounds, *seed, *threads, *chain)
	}
	reports, err := crashtest.Run(cfg)

	if ring != nil {
		if werr := ring.WriteJSON(traceOut); werr != nil {
			fmt.Fprintln(os.Stderr, "romulus-crashtest: writing trace:", werr)
		}
	}
	if *jsonOut {
		out := struct {
			Seed    int64              `json:"seed"`
			Reports []crashtest.Report `json:"reports"`
			Metrics *obs.Snapshot      `json:"metrics,omitempty"`
			Failure *crashtest.Failure `json:"failure,omitempty"`
			Error   string             `json:"error,omitempty"`
		}{Seed: *seed, Reports: reports}
		if cfg.Metrics != nil {
			snap := cfg.Metrics.Snapshot()
			out.Metrics = &snap
		}
		if err != nil {
			var f *crashtest.Failure
			if errors.As(err, &f) {
				out.Failure = f
			} else {
				out.Error = err.Error()
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(out)
		if err != nil {
			os.Exit(1)
		}
		return
	}

	for _, r := range reports {
		fmt.Printf("%-8s %6d rounds, %d threads — %d mid-tx crashes, %d chain crashes "+
			"(%d inside recovery), workers: %d rolled back / %d carried forward\n",
			r.Engine, r.Rounds, r.Threads, r.MidTxCrashes, r.ChainCrashes,
			r.RecoveryCrashes, r.RolledBack, r.CarriedForward)
		if cfg.Audit {
			w := r.AuditWaste
			fmt.Printf("         audit: %d violations; waste: %d clean pwbs, %d requeued pwbs, "+
				"%d stores on queued lines, %d no-op fences\n",
				r.AuditViolations, w.PwbClean, w.PwbRequeued, w.StoreQueued, w.FenceNoop)
		}
	}
	if cfg.Metrics != nil {
		fmt.Println("# campaign totals")
		cfg.Metrics.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAILURE: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("OK")
}
