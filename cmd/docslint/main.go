// Command docslint checks the repository's Markdown files: every relative
// link must point to an existing file or directory, and every fragment
// (same-file `#anchor` or `file.md#anchor`) must match a heading in the
// target document, using GitHub's anchor derivation. External links
// (http, https, mailto) are not fetched.
//
//	docslint [root]   # default root: .
//
// Exit status 1 and one "file:line: message" per problem; used by
// `make docs-check`.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline Markdown links and images: [text](target) with an
// optional "title". Targets with spaces must be angle-bracketed in
// Markdown, which this repo does not use, so a no-space target suffices.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "bin", "results", "node_modules":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}

	anchors := map[string]map[string]bool{} // md path -> set of heading anchors
	for _, f := range mdFiles {
		a, err := headingAnchors(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docslint:", err)
			os.Exit(2)
		}
		anchors[filepath.Clean(f)] = a
	}

	broken := 0
	for _, f := range mdFiles {
		broken += checkFile(f, anchors)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

func checkFile(path string, anchors map[string]map[string]bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docslint:", err)
		os.Exit(2)
	}
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := filepath.Clean(path)
			if file != "" {
				resolved = filepath.Clean(filepath.Join(filepath.Dir(path), file))
				if _, err := os.Stat(resolved); err != nil {
					fmt.Printf("%s:%d: broken link %q: no such file\n", path, i+1, target)
					broken++
					continue
				}
			}
			if frag != "" {
				set, ok := anchors[resolved]
				if !ok {
					// Fragment into a non-Markdown target (e.g. a source
					// file): nothing to validate.
					continue
				}
				if !set[strings.ToLower(frag)] {
					fmt.Printf("%s:%d: broken anchor %q: no matching heading in %s\n",
						path, i+1, target, resolved)
					broken++
				}
			}
		}
	}
	return broken
}

// headingAnchors derives the GitHub-style anchor for every heading in the
// file: lowercase, punctuation stripped, spaces to hyphens, "-N" suffixes
// for duplicates.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || !strings.HasPrefix(text, " ") && text != "" {
			continue // "#word" is not a heading
		}
		a := anchorOf(strings.TrimSpace(text))
		if n := counts[a]; n > 0 {
			set[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			set[a] = true
		}
		counts[a]++
	}
	return set, nil
}

func anchorOf(heading string) string {
	// Drop inline code/emphasis markers and links' bracket syntax first.
	heading = strings.NewReplacer("`", "", "*", "", "[", "", "]", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		default:
			// GitHub keeps Unicode letters; this repo's headings are ASCII
			// plus punctuation, which GitHub strips.
			if r > 127 {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}
