// Command romulus-sps regenerates Figure 9 of the Romulus paper: the SPS
// microbenchmark (random swaps in a 10,000-element persistent integer
// array) across transaction sizes and persistence models — clwb+sfence,
// clflushopt+sfence, clflush, emulated STT-RAM and emulated PCM.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	engines := flag.String("engines", "all", "comma-separated engine list")
	swaps := flag.String("swaps", "1,4,8,16,32,64,128,256,1024", "swaps per transaction")
	models := flag.String("models", "clwb,clflushopt,clflush,stt,pcm", "persistence models to sweep")
	secs := flag.Float64("secs", 1, "seconds per data point")
	flag.Parse()

	kinds, err := bench.ParseEngines(*engines)
	exitOn(err)
	sw, err := bench.ParseInts(*swaps)
	exitOn(err)
	var ms []pmem.Model
	for _, name := range strings.Split(*models, ",") {
		m, ok := pmem.ModelByName(strings.TrimSpace(name))
		if !ok {
			exitOn(fmt.Errorf("unknown model %q", name))
		}
		ms = append(ms, m)
	}
	out, err := bench.Fig9(bench.FigOptions{
		Engines:  kinds,
		Duration: time.Duration(*secs * float64(time.Second)),
	}, sw, ms)
	exitOn(err)
	fmt.Print(out)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-sps:", err)
		os.Exit(1)
	}
}
