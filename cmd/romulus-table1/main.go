// Command romulus-table1 regenerates Table 1 of the Romulus paper: per
// transaction persistence-fence counts, write-back counts and write
// amplification, measured on the runnable engines (the three Romulus
// variants, the Mnemosyne-style redo-log STM and the PMDK-style undo-log
// PTM) and computed analytically for the paper-only systems (Vista, Atlas,
// JustDo).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	stores := flag.Int("stores", 64, "64-bit stores per transaction")
	txs := flag.Int("txs", 100, "transactions to average over")
	flag.Parse()

	rows, err := bench.MeasureTable1(*stores, *txs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-table1:", err)
		os.Exit(1)
	}
	rows = append(rows, bench.AnalyticTable1Rows(*stores)...)
	t := bench.NewTable("engine", "log type", "interposition", "fences/tx", "pwbs/tx", "user B/tx", "persisted B/tx", "amplification %")
	for _, r := range rows {
		src := "measured"
		if !r.Measured {
			src = "analytic"
		}
		_ = src
		t.Row(r.Engine, r.LogType, r.Interposition, r.Fences, r.Pwbs, r.UserBytes, r.PersistedBytes, r.AmplificationPct)
	}
	fmt.Printf("Table 1 — transactional persistence costs (%d stores/tx; paper-only systems analytic)\n%s", *stores, t)
}
