// Command romulus-recover measures recovery cost (§6.5 of the Romulus
// paper): the time to restore consistency after a mid-transaction crash,
// which is dominated by copying the used prefix of the region (back over
// main). The paper reports ~114 µs for 1,000 key-value pairs, ~127 ms for
// one million, and about one second per recovered gigabyte.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	sizes := flag.String("sizes", "1000,10000,100000,1000000", "key-value pair counts to measure")
	flag.Parse()

	ns, err := bench.ParseInts(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-recover:", err)
		os.Exit(1)
	}
	t := bench.NewTable("entries", "copied bytes", "recovery time", "GB/s")
	for _, n := range ns {
		res, err := bench.MeasureRecovery(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "romulus-recover:", err)
			os.Exit(1)
		}
		gbps := float64(res.Watermark) / res.Duration.Seconds() / 1e9
		t.Row(res.Entries, res.Watermark, res.Duration.String(), gbps)
	}
	fmt.Printf("Recovery cost (§6.5) — mid-transaction crash, RomulusLog\n%s", t)
}
