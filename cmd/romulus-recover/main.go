// Command romulus-recover measures recovery cost (§6.5 of the Romulus
// paper): the time to restore consistency after a mid-transaction crash,
// which is dominated by copying the used prefix of the region (back over
// main). The paper reports ~114 µs for 1,000 key-value pairs, ~127 ms for
// one million, and about one second per recovered gigabyte.
//
// With -flight <image> it instead performs flight-recorder forensics: the
// saved device image's header locates the reserved tail, and the blackbox
// ring there is decoded and printed — which group-commit batches had started
// and committed, which were still in flight, and any prior recoveries — all
// read-only, without running recovery on the image. -json emits the report
// as one JSON object for tooling.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	sizes := flag.String("sizes", "1000,10000,100000,1000000", "key-value pair counts to measure")
	flight := flag.String("flight", "", "dump the flight recorder of a saved device image instead of benchmarking")
	jsonOut := flag.Bool("json", false, "with -flight: emit the report as JSON")
	flag.Parse()

	if *flight != "" {
		exitOn(dumpFlight(*flight, *jsonOut))
		return
	}

	ns, err := bench.ParseInts(*sizes)
	exitOn(err)
	t := bench.NewTable("entries", "copied bytes", "recovery time", "GB/s")
	for _, n := range ns {
		res, err := bench.MeasureRecovery(n)
		exitOn(err)
		gbps := float64(res.Watermark) / res.Duration.Seconds() / 1e9
		t.Row(res.Entries, res.Watermark, res.Duration.String(), gbps)
	}
	fmt.Printf("Recovery cost (§6.5) — mid-transaction crash, RomulusLog\n%s", t)
}

// dumpFlight locates and renders the blackbox ring of one saved shard image.
func dumpFlight(path string, asJSON bool) error {
	dev, err := pmem.LoadFile(path, pmem.ModelCLWB)
	if err != nil {
		return err
	}
	off, size, err := core.TailRegion(dev)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if size < blackbox.MinSize {
		return fmt.Errorf("%s: no flight recorder (reserved tail is %d bytes; the store ran without -blackbox)", path, size)
	}
	rep := blackbox.Inspect(dev, off, size)
	if asJSON {
		return rep.WriteJSON(os.Stdout)
	}
	fmt.Printf("%s: flight recorder @%#x (%d bytes)\n", path, off, size)
	return rep.WriteText(os.Stdout)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-recover:", err)
		os.Exit(1)
	}
}
