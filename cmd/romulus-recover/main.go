// Command romulus-recover measures recovery cost (§6.5 of the Romulus
// paper): the time to restore consistency after a mid-transaction crash,
// which is dominated by copying the used prefix of the region (back over
// main). The paper reports ~114 µs for 1,000 key-value pairs, ~127 ms for
// one million, and about one second per recovered gigabyte.
//
// With -flight <image> it instead performs flight-recorder forensics: the
// saved device image's header locates the reserved tail, and the blackbox
// ring there is decoded and printed — which group-commit batches had started
// and committed, which were still in flight, and any prior recoveries — all
// read-only, without running recovery on the image. -json emits the report
// as one JSON object for tooling.
//
// With -coord <image> it inspects a saved coordinator-log image instead:
// the two-phase record's disposition (free, prepared-in-doubt, or garbage),
// a per-shard census of any staged batch, and the placement record with its
// migration journal — what recovery would do (roll the batch forward, roll
// a split back, or carry a cutover through) without running it. -json emits
// the same report as one JSON object.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/pmem"
	"repro/internal/shard"
)

func main() {
	sizes := flag.String("sizes", "1000,10000,100000,1000000", "key-value pair counts to measure")
	flight := flag.String("flight", "", "dump the flight recorder of a saved device image instead of benchmarking")
	coord := flag.String("coord", "", "dump the two-phase record, placement map and migration journal of a saved coordinator image instead of benchmarking")
	jsonOut := flag.Bool("json", false, "with -flight or -coord: emit the report as JSON")
	flag.Parse()

	if *flight != "" {
		exitOn(dumpFlight(*flight, *jsonOut))
		return
	}
	if *coord != "" {
		exitOn(dumpCoord(*coord, *jsonOut))
		return
	}

	ns, err := bench.ParseInts(*sizes)
	exitOn(err)
	t := bench.NewTable("entries", "copied bytes", "recovery time", "GB/s")
	for _, n := range ns {
		res, err := bench.MeasureRecovery(n)
		exitOn(err)
		gbps := float64(res.Watermark) / res.Duration.Seconds() / 1e9
		t.Row(res.Entries, res.Watermark, res.Duration.String(), gbps)
	}
	fmt.Printf("Recovery cost (§6.5) — mid-transaction crash, RomulusLog\n%s", t)
}

// dumpFlight locates and renders the blackbox ring of one saved shard image.
func dumpFlight(path string, asJSON bool) error {
	dev, err := pmem.LoadFile(path, pmem.ModelCLWB)
	if err != nil {
		return err
	}
	off, size, err := core.TailRegion(dev)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if size < blackbox.MinSize {
		return fmt.Errorf("%s: no flight recorder (reserved tail is %d bytes; the store ran without -blackbox)", path, size)
	}
	rep := blackbox.Inspect(dev, off, size)
	if asJSON {
		return rep.WriteJSON(os.Stdout)
	}
	fmt.Printf("%s: flight recorder @%#x (%d bytes)\n", path, off, size)
	return rep.WriteText(os.Stdout)
}

// dumpCoord decodes one saved coordinator image offline: the 2PC record's
// disposition and the placement record with any open migration journal.
func dumpCoord(path string, asJSON bool) error {
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep := shard.InspectCoordImage(img)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("%s: coordinator record (%d bytes)\n", path, len(img))
	if !rep.Formatted {
		fmt.Println("  header:     unformatted (fresh or mid-format image; nothing to resolve)")
	} else {
		switch {
		case rep.InDoubt:
			fmt.Printf("  state:      %s — batch %d IN DOUBT; reopen rolls it forward\n", rep.State, rep.BatchID)
		default:
			fmt.Printf("  state:      %s (batch %d)\n", rep.State, rep.BatchID)
		}
		if rep.PayloadError != "" {
			fmt.Printf("  payload:    %s\n", rep.PayloadError)
		} else if rep.InDoubt {
			var parts []string
			shards := make([]int, 0, len(rep.OpsPerShard))
			for sh := range rep.OpsPerShard {
				shards = append(shards, sh)
			}
			sort.Ints(shards)
			for _, sh := range shards {
				parts = append(parts, fmt.Sprintf("shard %d: %d", sh, rep.OpsPerShard[sh]))
			}
			fmt.Printf("  payload:    %d staged op(s) (%s)\n", rep.PayloadOps, strings.Join(parts, ", "))
		}
	}
	if rep.Placement == nil {
		fmt.Println("  placement:  none (image predates placement routing)")
		return nil
	}
	pl := rep.Placement
	counts := make([]string, len(pl.SlotsPerShard))
	for i, c := range pl.SlotsPerShard {
		counts[i] = fmt.Sprintf("%d", c)
	}
	fmt.Printf("  placement:  %d slots over %d shards, version %d (slots/shard: %s)\n",
		pl.NumSlots, pl.NumShards, pl.Version, strings.Join(counts, " "))
	j := pl.Journal
	switch j.Phase {
	case migrate.PhaseNone:
		fmt.Println("  journal:    closed — no migration in flight")
	case migrate.PhaseCopy:
		fmt.Printf("  journal:    copy (id %d) — %d slot(s) moving %d → %d; reopen rolls the split BACK (purges partial copies from shard %d)\n",
			j.ID, len(j.Slots), j.Src, j.Dst, j.Dst)
	case migrate.PhaseCleanup:
		fmt.Printf("  journal:    cleanup (id %d) — cutover published for %d slot(s) %d → %d; reopen rolls FORWARD (purges moved keys from shard %d)\n",
			j.ID, len(j.Slots), j.Src, j.Dst, j.Src)
	default:
		fmt.Printf("  journal:    %v (id %d) — unrecognized phase\n", j.Phase, j.ID)
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-recover:", err)
		os.Exit(1)
	}
}
