// Command romulusd serves the sharded persistent KV store over TCP: a
// line-oriented, pipelined protocol (PING, GET, SET, DEL, INCR/DECR,
// EXPIRE/TTL, MULTI…EXEC, STATS, SCRUB, QUIT; the wire contract is
// docs/PROTOCOL.md) on -addr. Clients may stream many commands before
// reading replies; replies come back strictly in order.
//
// Writes from all connections group-commit: each shard has a commit loop
// merging queued operations into one durable transaction, so N concurrent
// writers share a durability round instead of paying N psyncs.
// -group-max-batch bounds operations per batch; -group-linger lets a batch
// wait for more operations (0, the default, never waits — batches still
// form under load with no idle latency).
//
// Keys hash-partition across -shards independent Romulus engines (-engine
// rom|romlog|romlr); multi-key MULTI batches that span shards commit through
// a durable two-phase record and are atomic across crashes. With -dir the
// shard and coordinator images persist across restarts (loaded on startup,
// written on shutdown). With -http an observability endpoint serves
// /metrics (shard_*, xshard_*, net_* series; ?format=prom for Prometheus),
// /stats (JSON snapshot), /healthz, /readyz (503 while shards are
// quarantined), with -audit /audit, with -spans /trace (request timelines:
// /trace?req=<id>), and with -pprof the Go profiling endpoints.
//
// Each shard's device reserves a small pmem-backed flight recorder
// (-blackbox, on by default): group-commit batch starts and commits are
// fenced onto a ring in the reserved tail, recovered and printed on the next
// startup — a crash-surviving record of what was in flight. -spans
// additionally assigns every request a server-wide id and traces its phases
// (parse, queue_wait, batch_form, psync_wait, reply_flush) through the
// group-commit pipeline; see docs/OBSERVABILITY.md.
//
// With -quarantine (on by default), a shard whose device reports a media
// fault is fenced instead of served: its commands answer "UNAVAIL shard=N"
// while the other shards keep working, and "SCRUB <n>" re-formats and
// readmits it once the operator has dealt with the medium (the shard's data
// is lost and reported, never served corrupt). -idle-timeout drops
// connections with no complete command for the given duration; -max-batch
// bounds the MULTI queue per connection ("ERR batch too large" beyond it).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight commands
// finish and flush their replies, then the store closes (saving images).
// Every acknowledged write is durable before its reply, so a drain or crash
// after the ack never loses it.
//
//	romulusd -addr :6380 -shards 4 -engine romlog -dir /tmp/romulusd -http :8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obshttp"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":6380", "TCP listen address for the KV protocol")
	shards := flag.Int("shards", 4, "number of hash partitions (fixed at store creation)")
	engine := flag.String("engine", "romlog", "Romulus engine per shard: rom, romlog or romlr")
	region := flag.Int("region", 8<<20, "persistent heap bytes per twin copy per shard")
	dir := flag.String("dir", "", "image directory for persistence across restarts (empty: in-memory)")
	httpAddr := flag.String("http", "", "serve /metrics and /stats on this address (e.g. :8080)")
	auditFlag := flag.Bool("audit", false, "attach durability auditors to every shard and the coordinator")
	drainTimeout := flag.Duration("drain", 5*time.Second, "graceful shutdown budget before connections are closed forcibly")
	quarantine := flag.Bool("quarantine", true, "fence shards whose devices report media faults (UNAVAIL replies) instead of serving them; SCRUB readmits")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop connections idle for this long between commands (0: never)")
	maxBatch := flag.Int("max-batch", 0, "maximum queued ops per MULTI batch (0: default 4096, negative: unbounded)")
	groupMax := flag.Int("group-max-batch", 0, "maximum ops per group-commit batch transaction (0: default 256)")
	groupLinger := flag.Duration("group-linger", 0, "how long a group-commit batch waits for more ops after its first (0: commit immediately)")
	spansFlag := flag.Bool("spans", false, "trace every request's phase timeline (net_span_* histograms, /trace?req=<id>)")
	spanRing := flag.Int("span-ring", 4096, "span events retained for /trace (with -spans)")
	blackboxFlag := flag.Bool("blackbox", true, "reserve a pmem flight recorder per shard (batch starts/commits survive crashes)")
	pprofFlag := flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof (with -http)")
	flag.Parse()

	variant, err := parseVariant(*engine)
	exitOn(err)

	reg := obs.NewRegistry()
	st, err := shard.Open(shard.Options{
		Shards:           *shards,
		RegionSize:       *region,
		Variant:          variant,
		Dir:              *dir,
		Metrics:          reg,
		Audit:            *auditFlag,
		QuarantineFaults: *quarantine,
		Blackbox:         *blackboxFlag,
	})
	exitOn(err)

	// A prior run's flight data, replayed from the reserved tails: what was
	// in flight when that run ended (or crashed).
	for _, rep := range st.FlightReports() {
		if rep != nil && !rep.Empty() {
			fmt.Printf("romulusd: flight recorder: %s\n", rep)
		}
	}

	var spans *obs.SpanRecorder
	if *spansFlag {
		spans = obs.NewSpanRecorder(reg, *spanRing)
	}
	srv := server.New(st, server.Options{
		Registry:      reg,
		IdleTimeout:   *idleTimeout,
		MaxBatchOps:   *maxBatch,
		GroupMaxBatch: *groupMax,
		GroupLinger:   *groupLinger,
		Spans:         spans,
	})

	if *httpAddr != "" {
		src := obshttp.Sources{
			Registry: func() *obs.Registry { return reg },
			Spans:    spans,
			Pprof:    *pprofFlag,
			Ready: func() error {
				if q := st.Quarantined(); len(q) > 0 {
					return fmt.Errorf("%d shard(s) quarantined: %v", len(q), q)
				}
				return nil
			},
		}
		if *auditFlag {
			src.Auditors = st.Auditors
		}
		mux := obshttp.NewMux(src)
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(srv.StatsReply())
		})
		hs, err := obshttp.Listen(*httpAddr, mux)
		exitOn(err)
		defer hs.Shutdown(context.Background())
		fmt.Printf("romulusd: observability on http://%s (/metrics, /stats, /healthz, /readyz)\n", hs.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	exitOn(err)
	fmt.Printf("romulusd: serving %d shards (%s) on %s\n", st.NumShards(), variant, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Printf("romulusd: %v, draining connections (%v budget)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "romulusd: drain incomplete:", err)
		}
		<-done
	case err := <-done:
		exitOn(err)
	}
	exitOn(st.Close())
	fmt.Println("romulusd: store closed cleanly")
	if n := st.ViolationCount(); n > 0 {
		exitOn(fmt.Errorf("%d durability violation(s) recorded", n))
	}
}

func parseVariant(s string) (core.Variant, error) {
	switch s {
	case "rom":
		return core.Rom, nil
	case "romlog":
		return core.RomLog, nil
	case "romlr":
		return core.RomLR, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want rom, romlog or romlr)", s)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulusd:", err)
		os.Exit(1)
	}
}
