// Command romulus-bench regenerates Figures 4, 5, 6 and 7 of the Romulus
// paper: data-structure throughput across engines, thread counts, value
// sizes and population sizes.
//
// Usage:
//
//	romulus-bench -fig 4 [-engines rom,romlog,romlr,mne,pmdk]
//	              [-threads 1,2,4,8] [-secs 1] [-keys 1000] [-model dram]
//	romulus-bench -fig 6 -sizes 10000,100000,1000000
//
// The paper's full-fidelity settings are -secs 20 with five runs; defaults
// are scaled for a quick pass.
//
// Observability mode runs a deterministic fixed-operation workload instead
// of a timed figure, and reports the metric set of docs/OBSERVABILITY.md:
//
//	romulus-bench -workload swaps -metrics [-ops 1000] [-seed 1]
//	romulus-bench -workload map -trace trace.jsonl
//
// Sharded mode sweeps the single-key workload across shard counts of the
// partitioned store (internal/shard): the same client load routed over more
// independent engines, reported in the same JSON-lines schema:
//
//	romulus-bench -shards 1,2,4 [-engines romlog] [-threads 4] [-json FILE]
//
// Server mode sweeps pipelined client connections against the network
// front-end (internal/server): each data point boots a loopback romulusd
// store and measures throughput, ack-latency quantiles and — the group-commit
// evidence — device fence events per acknowledged write, reported with the
// conns field set:
//
//	romulus-bench -server 1,2,8,32,64,256,1024 [-engines romlog] [-ops 2000] [-json FILE]
//
// Migrate mode measures online-rebalance serving capacity: a two-shard
// store under the shardkv client mix splits a shard mid-load, and the row
// records steady vs during-split throughput (workload "rebalance"); the
// during/steady ratio is an absolute trajectory SLO — at least half the
// steady rate must survive the split:
//
//	romulus-bench -migrate [-engines romlog] [-threads 4] [-ops 1500] [-json FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	fig := flag.Int("fig", 4, "figure to reproduce: 4, 5, 6 or 7")
	pwbHist := flag.Bool("pwbhist", false, "print pwbs-per-transaction histograms (§6.2 analysis) instead of a figure")
	engines := flag.String("engines", "all", "comma-separated engine list (rom,romlog,romlr,mne,pmdk)")
	threads := flag.String("threads", "1,2,4,8", "comma-separated thread counts")
	secs := flag.Float64("secs", 1, "seconds per data point")
	keys := flag.Int("keys", 0, "population size (default: the figure's)")
	sizes := flag.String("sizes", "10000,100000,1000000", "figure 6 population sizes")
	model := flag.String("model", "dram", "persistence model: dram, clwb, clflushopt, clflush, stt, pcm")
	workload := flag.String("workload", "", "run a deterministic workload (swaps, map) instead of a figure")
	shardCounts := flag.String("shards", "", "sweep the sharded store across these shard counts (e.g. 1,2,4) instead of a figure; -engines selects Romulus variants, the first -threads value sets client goroutines")
	serverConns := flag.String("server", "", "sweep the network server across these pipelined connection counts (e.g. 1,2,8,32,64,256,1024) instead of a figure; -engines selects Romulus variants")
	migrateRun := flag.Bool("migrate", false, "measure online-rebalance serving capacity (steady vs during-split throughput on a two-shard store) instead of a figure; -engines selects Romulus variants, the first -threads value sets client goroutines")
	pipeline := flag.Int("pipeline", 32, "per-connection pipelining window in -server mode")
	spanOverhead := flag.Bool("span-overhead", false, "compare server throughput with request tracing off vs on (pins the span-layer overhead); -engines selects variants, the first -server value sets connections")
	trials := flag.Int("trials", 3, "off/on trial pairs per engine in -span-overhead mode")
	ops := flag.Int("ops", 1000, "update transactions per engine in -workload mode")
	seed := flag.Int64("seed", 1, "workload operation seed")
	metrics := flag.Bool("metrics", false, "print the per-engine metrics registry after a -workload run")
	trace := flag.String("trace", "", "write the per-transaction trace (JSON lines) of a -workload run to this file, or - for stdout")
	audit := flag.Bool("audit", false, "chain the durability auditor onto each engine of a -workload run (violations fail the run; waste shows as audit_* metrics)")
	jsonOut := flag.String("json", "", "write machine-readable per-engine results (romulus-bench/workload/v1 JSON lines) of a -workload run to this file, or - for stdout")
	appendJSON := flag.Bool("append", false, "append to the -json file instead of truncating it (trajectory mode: one row per run accumulates history)")
	flag.Parse()

	kinds, err := bench.ParseEngines(*engines)
	exitOn(err)
	ths, err := bench.ParseInts(*threads)
	exitOn(err)
	m, ok := pmem.ModelByName(*model)
	if !ok {
		exitOn(fmt.Errorf("unknown model %q", *model))
	}
	if *spanOverhead {
		oopts := bench.SpanOverheadOptions{
			Trials:   *trials,
			Ops:      *ops,
			Pipeline: *pipeline,
			Seed:     *seed,
			Model:    m,
		}
		if *engines != "all" {
			oopts.Engines = kinds
		}
		if *serverConns != "" {
			counts, err := bench.ParseInts(*serverConns)
			exitOn(err)
			oopts.Conns = counts[0]
		}
		out, err := bench.RunSpanOverhead(oopts)
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *serverConns != "" {
		counts, err := bench.ParseInts(*serverConns)
		exitOn(err)
		vopts := bench.ServerWorkloadOptions{
			Conns:    counts,
			Ops:      *ops,
			Pipeline: *pipeline,
			Seed:     *seed,
			Model:    m,
			Metrics:  *metrics,
			Audit:    *audit,
		}
		// -engines all means every engine with a server composition, which
		// is exactly the Romulus variants.
		if *engines != "all" {
			vopts.Engines = kinds
		}
		if *jsonOut != "" {
			if *jsonOut == "-" {
				vopts.JSONOut = os.Stdout
			} else {
				mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
				if *appendJSON {
					mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
				}
				f, err := os.OpenFile(*jsonOut, mode, 0o644)
				exitOn(err)
				defer f.Close()
				vopts.JSONOut = f
			}
		}
		out, err := bench.RunServerWorkload(vopts)
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *migrateRun {
		mopts := bench.MigrateWorkloadOptions{
			Threads: ths[0],
			Ops:     *ops,
			Seed:    *seed,
			Model:   m,
			Metrics: *metrics,
			Audit:   *audit,
		}
		// -engines all means every engine with a sharded composition, which
		// is exactly the Romulus variants.
		if *engines != "all" {
			mopts.Engines = kinds
		}
		if *jsonOut != "" {
			if *jsonOut == "-" {
				mopts.JSONOut = os.Stdout
			} else {
				mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
				if *appendJSON {
					mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
				}
				f, err := os.OpenFile(*jsonOut, mode, 0o644)
				exitOn(err)
				defer f.Close()
				mopts.JSONOut = f
			}
		}
		out, err := bench.RunMigrateWorkload(mopts)
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *shardCounts != "" {
		counts, err := bench.ParseInts(*shardCounts)
		exitOn(err)
		sopts := bench.ShardWorkloadOptions{
			ShardCounts: counts,
			Threads:     ths[0],
			Ops:         *ops,
			Seed:        *seed,
			Model:       m,
			Metrics:     *metrics,
			Audit:       *audit,
		}
		// -engines all means every engine with a sharded composition, which
		// is exactly the Romulus variants.
		if *engines != "all" {
			sopts.Engines = kinds
		}
		if *jsonOut != "" {
			if *jsonOut == "-" {
				sopts.JSONOut = os.Stdout
			} else {
				mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
				if *appendJSON {
					mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
				}
				f, err := os.OpenFile(*jsonOut, mode, 0o644)
				exitOn(err)
				defer f.Close()
				sopts.JSONOut = f
			}
		}
		out, err := bench.RunShardWorkload(sopts)
		exitOn(err)
		fmt.Print(out)
		return
	}
	if *workload != "" {
		wopts := bench.WorkloadOptions{
			Workload: *workload,
			Engines:  kinds,
			Ops:      *ops,
			Threads:  ths,
			Seed:     *seed,
			Model:    m,
			Metrics:  *metrics,
			Audit:    *audit,
		}
		if *trace != "" {
			if *trace == "-" {
				wopts.TraceOut = os.Stdout
			} else {
				f, err := os.Create(*trace)
				exitOn(err)
				defer f.Close()
				wopts.TraceOut = f
			}
		}
		if *jsonOut != "" {
			if *jsonOut == "-" {
				wopts.JSONOut = os.Stdout
			} else {
				mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
				if *appendJSON {
					mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
				}
				f, err := os.OpenFile(*jsonOut, mode, 0o644)
				exitOn(err)
				defer f.Close()
				wopts.JSONOut = f
			}
		}
		out, err := bench.RunWorkload(wopts)
		exitOn(err)
		fmt.Print(out)
		return
	}
	opts := bench.FigOptions{
		Engines:  kinds,
		Threads:  ths,
		Duration: time.Duration(*secs * float64(time.Second)),
		Keys:     *keys,
		Model:    m,
	}
	if *pwbHist {
		k := opts.Keys
		if k == 0 {
			k = 1000
		}
		out, err := bench.PwbHistograms(k, 2000)
		exitOn(err)
		fmt.Print(out)
		return
	}
	var out string
	switch *fig {
	case 4:
		out, err = bench.Fig4(opts)
	case 5:
		out, err = bench.Fig5(opts)
	case 6:
		var szs []int
		szs, err = bench.ParseInts(*sizes)
		if err == nil {
			out, err = bench.Fig6(opts, szs)
		}
	case 7:
		out, err = bench.Fig7(opts)
	default:
		err = fmt.Errorf("unknown figure %d (use 4, 5, 6 or 7)", *fig)
	}
	exitOn(err)
	fmt.Print(out)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-bench:", err)
		os.Exit(1)
	}
}
