// Command benchcheck guards benchmark trajectories: it reads one or more
// JSON-lines files accumulated with `romulus-bench -workload ... -json FILE
// -append` and exits non-zero if the newest row of any (workload, engine,
// model, threads, shards, conns) group regressed fences_per_tx or
// pwbs_per_tx above the group's historical best by more than the tolerance —
// write-backs get the same headroom as fences, so a dirty-range replicate
// backsliding toward full-copy write amplification fails the build just like
// a broken fence amortization. Network-server rows
// (conns > 0, from `romulus-bench -server`) are additionally gated on
// ops_per_sec falling below the group's best by more than the tolerance, so
// both halves of the group-commit claim — fence amortization per
// acknowledged write AND throughput scaling with connections — are held.
// Wire it after the experiment run (see `make experiments`) so a change that
// silently breaks fence amortization — batches collapsing to one op, elision
// lost — fails the build instead of shipping as a slower artifact.
//
// Usage:
//
//	benchcheck [-tol 0.30] results/BENCH_swaps.json results/BENCH_map.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	tol := flag.Float64("tol", bench.DefaultTrajectoryTol,
		"relative headroom against a group's historical best (fences_per_tx and pwbs_per_tx above, ops_per_sec below)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no trajectory files given")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		regs, err := bench.CheckTrajectoryFile(path, *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: REGRESSION %s\n", path, r)
			failed = true
		}
		if len(regs) == 0 {
			fmt.Printf("benchcheck: %s: ok\n", path)
		}
	}
	if failed {
		os.Exit(1)
	}
}
