// Command romulus-db regenerates Figure 8 of the Romulus paper: the
// LevelDB db_bench workloads (fillseq, fillsync, fillrandom, overwrite,
// readseq, readreverse, fill-100k) on RomulusDB and on the bundled
// LevelDB-style baseline, reporting microseconds per operation.
//
// The paper uses one million operations per thread; the default here is
// 100,000 for a quick pass (-n 1000000 for full fidelity).
//
// With -http ADDR an expvar-style observability endpoint serves the live
// RomulusDB store for the duration of the run: GET /metrics returns the
// current registry (text; ?format=json for JSON), GET /trace returns the
// retained per-transaction events as JSON lines. Each workload/thread
// combination opens a fresh store, so /metrics reflects the store of the
// currently running data point; /trace spans the whole run.
//
// With -audit a durability auditor chains onto each RomulusDB store: any
// durability violation aborts the run, audit_* counters join /metrics, and
// GET /audit serves the live auditor's summary (text; ?format=json).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/bench"
	"repro/internal/kvstore"
	"repro/internal/obs"
	"repro/internal/obshttp"
)

func main() {
	n := flag.Int("n", 100_000, "operations per thread (fillsync/fill100k cap at 1,000)")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	workloads := flag.String("workloads", strings.Join(bench.DBWorkloads, ","), "workloads to run")
	dbs := flag.String("dbs", "romdb,leveldb", "stores to benchmark")
	dir := flag.String("dir", "", "scratch directory for leveldb files (default: temp)")
	httpAddr := flag.String("http", "", "serve /metrics, /trace and /audit for the live romdb store on this address (e.g. :8080)")
	auditFlag := flag.Bool("audit", false, "chain a durability auditor onto each romdb store; violations abort the run")
	flag.Parse()

	ths, err := bench.ParseInts(*threads)
	exitOn(err)
	scratch := *dir
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "romulus-db-*")
		exitOn(err)
		defer os.RemoveAll(scratch)
	}

	// Each data point opens a fresh store, so the endpoint serves whichever
	// registry the current RunDBBenchObs call is populating; the trace ring
	// is shared across the run. The auditor likewise follows the live store.
	var cur atomic.Pointer[obs.Registry]
	var curAud atomic.Pointer[audit.Auditor]
	var ring *obs.RingSink
	if *httpAddr != "" {
		ring = obs.NewRingSink(4096)
		cur.Store(obs.NewRegistry())
		// The shared observability mux (same layout romulusd serves): bind
		// errors fail the run up front instead of dying in a goroutine, and
		// in-flight scrapes drain before exit.
		mux := obshttp.NewMux(obshttp.Sources{
			Registry: func() *obs.Registry { return cur.Load() },
			Trace:    ring,
			Auditor:  func() *audit.Auditor { return curAud.Load() },
		})
		hs, err := obshttp.Listen(*httpAddr, mux)
		exitOn(err)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			hs.Shutdown(ctx)
			cancel()
		}()
		go func() {
			if err := <-hs.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "romulus-db: http:", err)
			}
		}()
		fmt.Printf("observability endpoint on %s (/metrics, /trace, /audit)\n", hs.Addr())
	}

	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		t := bench.NewTable(append([]string{"db \\ threads"}, header(ths)...)...)
		for _, db := range strings.Split(*dbs, ",") {
			db = strings.TrimSpace(db)
			row := []any{db}
			for i, th := range ths {
				var reg *obs.Registry
				var sink obs.Sink
				if *httpAddr != "" && db == "romdb" {
					reg = obs.NewRegistry()
					cur.Store(reg)
					sink = ring
				}
				var onOpen func(*kvstore.DB)
				if *auditFlag && db == "romdb" {
					reg := reg
					onOpen = func(kdb *kvstore.DB) {
						a := audit.New(kdb.Engine().Device(), audit.Options{})
						a.Attach()
						kdb.SetAuditor(a)
						if reg != nil {
							a.PublishMetrics(reg)
						}
						curAud.Store(a)
					}
				}
				res, err := bench.RunDBBenchHook(db, w, filepath.Join(scratch, fmt.Sprintf("%s-%s-%d", db, w, i)), th, *n, reg, sink, onOpen)
				exitOn(err)
				if a := curAud.Load(); a != nil {
					if nv := a.ViolationCount(); nv > 0 {
						exitOn(fmt.Errorf("%s/%s threads=%d: auditor found %d durability violation(s)", db, w, th, nv))
					}
				}
				row = append(row, res.MicrosPerOp)
			}
			t.Row(row...)
		}
		unit := "µs/op"
		if w == "fill100k" {
			unit = "µs/op (100 kB values)"
		}
		fmt.Printf("Figure 8 — %s (%s, %d ops/thread)\n%s\n", w, unit, *n, t)
	}
}

func header(ths []int) []string {
	out := make([]string, len(ths))
	for i, t := range ths {
		out[i] = fmt.Sprintf("%d", t)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-db:", err)
		os.Exit(1)
	}
}
