// Command romulus-db regenerates Figure 8 of the Romulus paper: the
// LevelDB db_bench workloads (fillseq, fillsync, fillrandom, overwrite,
// readseq, readreverse, fill-100k) on RomulusDB and on the bundled
// LevelDB-style baseline, reporting microseconds per operation.
//
// The paper uses one million operations per thread; the default here is
// 100,000 for a quick pass (-n 1000000 for full fidelity).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
)

func main() {
	n := flag.Int("n", 100_000, "operations per thread (fillsync/fill100k cap at 1,000)")
	threads := flag.String("threads", "1,2,4", "comma-separated thread counts")
	workloads := flag.String("workloads", strings.Join(bench.DBWorkloads, ","), "workloads to run")
	dbs := flag.String("dbs", "romdb,leveldb", "stores to benchmark")
	dir := flag.String("dir", "", "scratch directory for leveldb files (default: temp)")
	flag.Parse()

	ths, err := bench.ParseInts(*threads)
	exitOn(err)
	scratch := *dir
	if scratch == "" {
		scratch, err = os.MkdirTemp("", "romulus-db-*")
		exitOn(err)
		defer os.RemoveAll(scratch)
	}
	for _, w := range strings.Split(*workloads, ",") {
		w = strings.TrimSpace(w)
		t := bench.NewTable(append([]string{"db \\ threads"}, header(ths)...)...)
		for _, db := range strings.Split(*dbs, ",") {
			db = strings.TrimSpace(db)
			row := []any{db}
			for i, th := range ths {
				res, err := bench.RunDBBench(db, w, filepath.Join(scratch, fmt.Sprintf("%s-%s-%d", db, w, i)), th, *n)
				exitOn(err)
				row = append(row, res.MicrosPerOp)
			}
			t.Row(row...)
		}
		unit := "µs/op"
		if w == "fill100k" {
			unit = "µs/op (100 kB values)"
		}
		fmt.Printf("Figure 8 — %s (%s, %d ops/thread)\n%s\n", w, unit, *n, t)
	}
}

func header(ths []int) []string {
	out := make([]string, len(ths))
	for i, t := range ths {
		out[i] = fmt.Sprintf("%d", t)
	}
	return out
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "romulus-db:", err)
		os.Exit(1)
	}
}
