package romulus_test

import (
	"bytes"
	"fmt"

	romulus "repro"
)

// Example shows the basic transaction lifecycle: durable updates, reads,
// and automatic rollback on error.
func Example() {
	eng, _ := romulus.New(4<<20, romulus.Config{})

	var counter romulus.Ptr
	eng.Update(func(tx romulus.Tx) error {
		p, err := tx.Alloc(8)
		if err != nil {
			return err
		}
		counter = p
		tx.Store64(counter, 10)
		tx.SetRoot(0, counter)
		return nil
	})

	// A failing transaction rolls everything back.
	eng.Update(func(tx romulus.Tx) error {
		tx.Store64(counter, 999)
		return fmt.Errorf("changed my mind")
	})

	eng.Read(func(tx romulus.Tx) error {
		fmt.Println("counter:", tx.Load64(tx.Root(0)))
		return nil
	})
	// Output: counter: 10
}

// ExampleNewRBTree demonstrates the persistent sorted map, including the
// ordered-navigation API.
func ExampleNewRBTree() {
	eng, _ := romulus.New(4<<20, romulus.Config{})
	var tree *romulus.RBTree
	eng.Update(func(tx romulus.Tx) error {
		var err error
		tree, err = romulus.NewRBTree(tx, 0)
		if err != nil {
			return err
		}
		for _, k := range []uint64{30, 10, 50, 20, 40} {
			if _, err := tree.Put(tx, k, k*100); err != nil {
				return err
			}
		}
		return nil
	})
	eng.Read(func(tx romulus.Tx) error {
		min, _, _ := tree.Min(tx)
		max, _, _ := tree.Max(tx)
		ceil, _, _ := tree.Ceiling(tx, 25)
		fmt.Println("min:", min, "max:", max, "ceiling(25):", ceil)
		tree.RangeBetween(tx, 20, 40, func(k, v uint64) bool {
			fmt.Println("in range:", k)
			return true
		})
		return nil
	})
	// Output:
	// min: 10 max: 50 ceiling(25): 30
	// in range: 20
	// in range: 30
	// in range: 40
}

// ExampleOpenDB demonstrates RomulusDB's LevelDB-style interface with
// fully durable writes.
func ExampleOpenDB() {
	db, _ := romulus.OpenDB(romulus.DBOptions{RegionSize: 4 << 20})
	db.Put([]byte("city"), []byte("Neuchatel"))

	var batch romulus.DBBatch
	batch.Put([]byte("venue"), []byte("SPAA"))
	batch.Put([]byte("year"), []byte("2018"))
	db.Write(&batch) // atomic and durable as a unit

	v, _ := db.Get([]byte("city"))
	fmt.Println("city:", string(v))
	fmt.Println("pairs:", db.Len())
	// Output:
	// city: Neuchatel
	// pairs: 3
}

// ExampleEngine_Snapshot demonstrates online backups: a consistent image
// taken while the engine stays available, restored into a new engine.
func ExampleEngine_Snapshot() {
	eng, _ := romulus.New(2<<20, romulus.Config{})
	var p romulus.Ptr
	eng.Update(func(tx romulus.Tx) error {
		p, _ = tx.Alloc(8)
		tx.Store64(p, 7)
		tx.SetRoot(0, p)
		return nil
	})

	var backup bytes.Buffer
	eng.Snapshot(&backup)

	eng.Update(func(tx romulus.Tx) error { // after the backup
		tx.Store64(p, 8)
		return nil
	})

	restored, _ := romulus.RestoreSnapshot(&backup, romulus.Config{})
	restored.Read(func(tx romulus.Tx) error {
		fmt.Println("backup holds:", tx.Load64(tx.Root(0)))
		return nil
	})
	eng.Read(func(tx romulus.Tx) error {
		fmt.Println("live engine holds:", tx.Load64(tx.Root(0)))
		return nil
	})
	// Output:
	// backup holds: 7
	// live engine holds: 8
}
