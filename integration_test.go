package romulus_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	romulus "repro"
	"repro/internal/pmem"
)

// TestFullStackScenario walks the whole public surface in one storyline:
// build several structures in one engine, take an online snapshot, keep
// mutating, crash with an adversarial policy, recover, and verify that the
// recovered state is the committed state and the snapshot is the earlier
// cut. This is the end-to-end path a downstream adopter exercises.
func TestFullStackScenario(t *testing.T) {
	eng, err := romulus.New(8<<20, romulus.Config{Variant: romulus.RomLR})
	if err != nil {
		t.Fatal(err)
	}

	var set *romulus.LinkedListSet
	var tree *romulus.RBTree
	var q *romulus.Queue
	if err := eng.Update(func(tx romulus.Tx) error {
		var err error
		if set, err = romulus.NewLinkedListSet(tx, 0); err != nil {
			return err
		}
		if tree, err = romulus.NewRBTree(tx, 1); err != nil {
			return err
		}
		if q, err = romulus.NewQueue(tx, 2); err != nil {
			return err
		}
		for k := uint64(1); k <= 50; k++ {
			if _, err := set.Add(tx, k); err != nil {
				return err
			}
			if _, err := tree.Put(tx, k, k*k); err != nil {
				return err
			}
			if err := q.Enqueue(tx, k); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Online snapshot of the 50-element state.
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// More committed work after the snapshot.
	for k := uint64(51); k <= 60; k++ {
		k := k
		if err := eng.Update(func(tx romulus.Tx) error {
			if _, err := set.Add(tx, k); err != nil {
				return err
			}
			_, err := tree.Put(tx, k, k*k)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	// A transaction that crashes mid-flight under a torn-word adversary.
	dev := eng.Device()
	var img []byte
	n := 0
	dev.SetHooks(&pmem.Hooks{Pwb: func(uint64) {
		n++
		if img == nil && n == 7 {
			img = dev.CrashImage(pmem.CrashPolicy{QueuedPersistProb: 0.5, TearWords: true})
		}
	}})
	eng.Update(func(tx romulus.Tx) error {
		for k := uint64(61); k <= 90; k++ {
			if _, err := set.Add(tx, k); err != nil {
				return err
			}
		}
		return nil
	})
	dev.SetHooks(nil)
	if img == nil {
		t.Fatal("no crash image captured")
	}

	// Recovery: the crashed transaction is all-or-nothing; everything
	// committed before it must be intact.
	rec, err := romulus.Open(pmem.FromImage(img, pmem.ModelDRAM), romulus.Config{Variant: romulus.RomLR})
	if err != nil {
		t.Fatal(err)
	}
	rset := romulus.AttachLinkedListSet(0)
	rtree := romulus.AttachRBTree(1)
	rq := romulus.AttachQueue(2)
	rec.Read(func(tx romulus.Tx) error {
		if got := rset.Len(tx); got != 60 && got != 90 {
			t.Errorf("set Len = %d, want 60 (rolled back) or 90 (committed)", got)
		}
		if !rtree.CheckInvariants(tx) {
			t.Error("tree invariants violated after recovery")
		}
		for k := uint64(1); k <= 60; k++ {
			if v, err := rtree.Get(tx, k); err != nil || v != k*k {
				t.Fatalf("tree lost committed key %d: %d, %v", k, v, err)
			}
		}
		if got := rq.Len(tx); got != 50 {
			t.Errorf("queue Len = %d, want 50", got)
		}
		return nil
	})

	// The snapshot restores the 50-element cut.
	old, err := romulus.RestoreSnapshot(&snap, romulus.Config{Variant: romulus.RomLR})
	if err != nil {
		t.Fatal(err)
	}
	old.Read(func(tx romulus.Tx) error {
		if got := romulus.AttachLinkedListSet(0).Len(tx); got != 50 {
			t.Errorf("snapshot set Len = %d, want 50", got)
		}
		if romulus.AttachLinkedListSet(0).Contains(tx, 51) {
			t.Error("snapshot contains post-snapshot key")
		}
		return nil
	})
}

// TestDBHeapExhaustion verifies the store degrades cleanly when the
// persistent heap fills: Put returns ErrOutOfMemory (rolled back), and the
// existing data stays intact and readable.
func TestDBHeapExhaustion(t *testing.T) {
	db, err := romulus.OpenDB(romulus.DBOptions{RegionSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{1}, 1024)
	var stored int
	var oom error
	for i := 0; i < 10_000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key%05d", i)), val); err != nil {
			oom = err
			break
		}
		stored++
	}
	if !errors.Is(oom, romulus.ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v (stored %d)", oom, stored)
	}
	if stored == 0 {
		t.Fatal("nothing stored before exhaustion")
	}
	// All previously stored pairs must be intact.
	if db.Len() != stored {
		t.Errorf("Len = %d, want %d", db.Len(), stored)
	}
	for i := 0; i < stored; i += 10 {
		if _, err := db.Get([]byte(fmt.Sprintf("key%05d", i))); err != nil {
			t.Fatalf("key %d lost after OOM: %v", i, err)
		}
	}
	// Deleting frees space for new writes.
	for i := 0; i < 10; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("key%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Put([]byte("after-oom"), val); err != nil {
		t.Fatalf("Put after freeing space: %v", err)
	}
}
