// Package romulus is a Go reproduction of "Romulus: Efficient Algorithms
// for Persistent Transactional Memory" (Correia, Felber, Ramalhete,
// SPAA 2018): a persistent transactional memory that keeps twin copies of
// the data — main, mutated in place, and back, a byte-level snapshot of the
// last consistent state — so that an update transaction needs at most four
// persistence fences regardless of its size, no persistent log, and only
// store interposition.
//
// # Engines
//
// Three variants are provided, selected by Config.Variant:
//
//   - Rom: the basic algorithm (Algorithm 1) — the whole used prefix of
//     main is replicated to back at commit;
//   - RomLog: a volatile redo log of modified address ranges confines the
//     replication to what actually changed (§4.7) — the flagship;
//   - RomLR: RomLog combined with Left-Right synchronization (§5.3) —
//     read-only transactions are wait-free, reading the back copy through
//     synthetic pointers while a writer mutates main.
//
// Writers are serialized through a flat-combining array behind a C-RW-WP
// reader-writer lock; batched operations share one durable transaction, so
// the average fence count per mutation can drop below four.
//
// Two baseline engines from the paper's evaluation are also included (as
// internal packages, surfaced through the benchmark tools): a PMDK-style
// undo-log PTM and a Mnemosyne-style persistent-redo-log STM.
//
// # Persistent memory
//
// Go has no flush intrinsics, so persistent memory is simulated
// (internal/pmem): a byte-addressable region with separate volatile and
// persisted images, pwb/pfence/psync primitives with configurable models
// (CLWB, CLFLUSHOPT, CLFLUSH, STT-RAM, PCM), and adversarial crash
// simulation used heavily by the test suite. Persistent pointers are
// offsets (Ptr) within the region; loads and stores go through a Tx, which
// is where interposition — the C++ persist<T> wrapper of the original —
// happens explicitly.
//
// # Quick start
//
//	eng, err := romulus.New(64<<20, romulus.Config{})     // RomLog engine
//	err = eng.Update(func(tx romulus.Tx) error {           // durable tx
//	    p, err := tx.Alloc(16)
//	    if err != nil { return err }
//	    tx.Store64(p, 42)
//	    tx.SetRoot(0, p)
//	    return nil
//	})
//	err = eng.Read(func(tx romulus.Tx) error {             // read-only tx
//	    _ = tx.Load64(tx.Root(0))
//	    return nil
//	})
//
// Persistent data structures (sorted linked-list set, hash maps, red-black
// tree) live in the pstruct subpackage API re-exported here, and RomulusDB
// — a durable key-value store with a LevelDB-style interface — in kvstore.
package romulus

import (
	"io"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/pstruct"
	"repro/internal/ptm"
)

// Core engine types.
type (
	// Engine is a Romulus persistent transactional memory.
	Engine = core.Engine
	// Config tunes an Engine; the zero value is the paper's RomulusLog.
	Config = core.Config
	// Variant selects the algorithm (Rom, RomLog, RomLR).
	Variant = core.Variant
	// Tx is a transaction handle; all persistent accesses go through it.
	Tx = ptm.Tx
	// Ptr is a persistent pointer (region offset); 0 is nil.
	Ptr = ptm.Ptr
	// Handle is a per-goroutine transaction context for hot paths.
	Handle = ptm.Handle
	// PTM is the engine-independent transactional-memory interface.
	PTM = ptm.PTM
	// TxStats counts transactions executed by an engine.
	TxStats = ptm.TxStats
	// Device is the simulated persistent-memory device.
	Device = pmem.Device
	// Model describes persistence-primitive behaviour and latency.
	Model = pmem.Model
	// CrashPolicy controls the fate of unfenced data at a simulated
	// power failure.
	CrashPolicy = pmem.CrashPolicy
)

// Engine variants.
const (
	// Rom is the basic twin-copy algorithm with full replication.
	Rom = core.Rom
	// RomLog adds the volatile range log (the default).
	RomLog = core.RomLog
	// RomLR adds Left-Right synchronization: wait-free readers.
	RomLR = core.RomLR
)

// NumRoots is the size of the root-pointer array.
const NumRoots = ptm.NumRoots

// Persistence models (§6.6 of the paper).
var (
	ModelDRAM       = pmem.ModelDRAM
	ModelCLWB       = pmem.ModelCLWB
	ModelCLFLUSHOPT = pmem.ModelCLFLUSHOPT
	ModelCLFLUSH    = pmem.ModelCLFLUSH
	ModelSTT        = pmem.ModelSTT
	ModelPCM        = pmem.ModelPCM
)

// Common errors.
var (
	// ErrOutOfMemory reports an exhausted persistent heap.
	ErrOutOfMemory = ptm.ErrOutOfMemory
	// ErrBadFree reports a Free of a pointer that is not a live allocation.
	ErrBadFree = ptm.ErrBadFree
	// ErrNotFound reports a missing key in a persistent data structure.
	ErrNotFound = pstruct.ErrNotFound
)

// New creates a fresh engine with twin copies of regionSize bytes.
func New(regionSize int, cfg Config) (*Engine, error) {
	return core.New(regionSize, cfg)
}

// Open attaches an engine to an existing device, running crash recovery if
// the device holds an interrupted instance.
func Open(dev *Device, cfg Config) (*Engine, error) {
	return core.Open(dev, cfg)
}

// OpenFile loads a persisted image from disk (written with
// Engine.Device().SaveFile or Engine.SnapshotToFile) and opens an engine
// over it.
func OpenFile(path string, cfg Config) (*Engine, error) {
	dev, err := pmem.LoadFile(path, cfg.Model)
	if err != nil {
		return nil, err
	}
	return core.Open(dev, cfg)
}

// RestoreSnapshot opens an engine over an online-backup image written by
// Engine.Snapshot. Snapshots are consistent cuts taken through the writer
// path: the twin-copy design makes the back region a byte-exact committed
// state, so backups cost one lock acquisition plus the write itself.
func RestoreSnapshot(r io.Reader, cfg Config) (*Engine, error) {
	return core.RestoreSnapshot(r, cfg)
}

// Persistent data structures (see internal/pstruct for details).
type (
	// LinkedListSet is the sorted linked-list set of Algorithm 2.
	LinkedListSet = pstruct.LinkedListSet
	// HashMap is the resizable chained hash map of §6.2.
	HashMap = pstruct.HashMap
	// HashMapFixed is the statically-dimensioned map of Figure 5.
	HashMapFixed = pstruct.HashMapFixed
	// RBTree is a persistent red-black tree.
	RBTree = pstruct.RBTree
	// ByteMap maps byte-string keys to byte-string values.
	ByteMap = pstruct.ByteMap
	// Queue is a persistent FIFO queue.
	Queue = pstruct.Queue
)

// Structure constructors and attachers.
var (
	NewLinkedListSet    = pstruct.NewLinkedListSet
	AttachLinkedListSet = pstruct.AttachLinkedListSet
	NewHashMap          = pstruct.NewHashMap
	AttachHashMap       = pstruct.AttachHashMap
	NewHashMapFixed     = pstruct.NewHashMapFixed
	AttachHashMapFixed  = pstruct.AttachHashMapFixed
	NewRBTree           = pstruct.NewRBTree
	AttachRBTree        = pstruct.AttachRBTree
	NewByteMap          = pstruct.NewByteMap
	AttachByteMap       = pstruct.AttachByteMap
	NewQueue            = pstruct.NewQueue
	AttachQueue         = pstruct.AttachQueue
)

// RomulusDB: the durable key-value store of §6.4.
type (
	// DB is a RomulusDB instance with a LevelDB-style interface.
	DB = kvstore.DB
	// DBOptions configure OpenDB.
	DBOptions = kvstore.Options
	// DBBatch is an atomic, durable write batch.
	DBBatch = kvstore.Batch
	// DBSession is a per-goroutine handle into a DB.
	DBSession = kvstore.Session
)

// ErrDBNotFound reports a missing key in a DB.
var ErrDBNotFound = kvstore.ErrNotFound

// OpenDB creates or reopens a RomulusDB store.
func OpenDB(opts DBOptions) (*DB, error) {
	return kvstore.Open(opts)
}
